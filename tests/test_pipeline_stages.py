"""Tests for the staged pipeline decomposition and StageContext."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.pipeline import BlockPipeline
from repro.core.stages import PIPELINE_STAGES, StageContext
from repro.net.observations import ObservationSeries


def _series(times, addresses=None, results=None) -> ObservationSeries:
    times = np.asarray(times, dtype=np.float64)
    if addresses is None:
        addresses = np.zeros(times.size, dtype=np.int16)
    if results is None:
        results = np.ones(times.size, dtype=bool)
    return ObservationSeries(times, addresses, results, observer="e")


class TestStageContext:
    def test_stage_records_time_and_sizes(self):
        ctx = StageContext()
        with ctx.stage("combine", n_in=10) as active:
            active.n_out = 7
        (record,) = ctx.records
        assert record.name == "combine"
        assert record.ran
        assert record.n_in == 10 and record.n_out == 7
        assert record.wall_s >= 0.0

    def test_stage_records_even_when_body_raises(self):
        ctx = StageContext()
        with pytest.raises(RuntimeError):
            with ctx.stage("trend", n_in=3):
                raise RuntimeError("stl blew up")
        assert ctx.last("trend").n_out == 0

    def test_skip_reason(self):
        ctx = StageContext()
        ctx.skip("detect", "no-trend", n_in=5)
        record = ctx.last("detect")
        assert not record.ran
        assert record.skipped == "no-trend"

    def test_helpers(self):
        ctx = StageContext()
        with ctx.stage("repair", n_in=1):
            pass
        ctx.skip("repair", "disabled")
        assert len(ctx.by_name("repair")) == 2
        assert ctx.last("repair").skipped == "disabled"
        assert ctx.last("missing") is None
        assert ctx.total_wall_s >= 0.0
        assert ctx.as_dict()["repair"]["skipped"] == "disabled"


class TestStagedAnalyze:
    def test_analyze_records_all_six_stages(self, workplace_block):
        _, truth, _, log = workplace_block
        ctx = StageContext()
        BlockPipeline(detect_on_all=True).analyze(
            [log], truth.addresses, sample_times=truth.col_times, ctx=ctx
        )
        names = [r.name for r in ctx.records]
        assert names == list(PIPELINE_STAGES)

    def test_stage_composition_equals_analyze(self, workplace_block):
        """Calling the stages one by one reproduces analyze() exactly."""
        _, truth, _, log = workplace_block
        pipeline = BlockPipeline(detect_on_all=True)
        whole = pipeline.analyze([log], truth.addresses, sample_times=truth.col_times)

        per_observer = pipeline.stage_repair([log])
        merged = pipeline.stage_combine(per_observer)
        recon = pipeline.stage_reconstruct(merged, truth.addresses, truth.col_times)
        classification = pipeline.stage_classify(recon)
        trend = pipeline.stage_trend(recon, classification)
        changes = pipeline.stage_detect(recon, trend)

        assert pickle.dumps(classification) == pickle.dumps(whole.classification)
        np.testing.assert_array_equal(recon.counts.values, whole.counts.values)
        assert (trend is None) == (whole.trend is None)
        if changes is not None and whole.changes is not None:
            assert changes.events == whole.changes.events

    def test_repair_disabled_records_skip(self, workplace_block):
        _, truth, _, log = workplace_block
        ctx = StageContext()
        BlockPipeline(apply_repair=False).analyze(
            [log], truth.addresses, sample_times=truth.col_times, ctx=ctx
        )
        assert ctx.last("repair").skipped == "disabled"

    def test_trend_skip_reasons(self):
        pipeline = BlockPipeline()
        ctx = StageContext()
        empty = _series([])
        recon = pipeline.stage_reconstruct(empty, np.array([], dtype=np.int16), ctx=ctx)
        classification = pipeline.stage_classify(recon, ctx=ctx)
        assert pipeline.stage_trend(recon, classification, ctx=ctx) is None
        assert ctx.last("trend").skipped == "not-responsive"
        assert pipeline.stage_detect(recon, None, ctx=ctx) is None
        assert ctx.last("detect").skipped == "no-trend"


class TestDefaultGrid:
    def test_single_observation_grid_covers_it(self):
        pipeline = BlockPipeline(sample_seconds=660.0)
        # observation exactly on a grid boundary: span would be zero
        grid = pipeline._default_grid(_series([6600.0]))
        assert grid.size >= 2
        assert grid[0] <= 6600.0 <= grid[-1]
        assert np.all(np.diff(grid) > 0)

    def test_single_off_grid_observation(self):
        pipeline = BlockPipeline(sample_seconds=660.0)
        grid = pipeline._default_grid(_series([6601.5]))
        assert grid[0] <= 6601.5 <= grid[-1]

    def test_grid_always_reaches_last_observation(self):
        pipeline = BlockPipeline(sample_seconds=660.0)
        times = [0.0, 660.0, 1320.0, 1320.0]  # duplicate final round
        grid = pipeline._default_grid(_series(times))
        assert grid[-1] >= times[-1]

    def test_empty_series_gives_empty_grid(self):
        assert BlockPipeline()._default_grid(_series([])).size == 0
