"""Unit tests for the observer simulators."""

from __future__ import annotations

from datetime import datetime

import numpy as np
import pytest

from repro.net.events import Calendar
from repro.net.loss import BernoulliLoss, NoLoss
from repro.net.prober import AdditionalProber, TrinocularObserver, probe_order
from repro.net.survey import SurveyObserver
from repro.net.usage import (
    NatGatewayUsage,
    ServerFarmUsage,
    SparseUsage,
    WorkplaceUsage,
    round_grid,
)

EPOCH = datetime(2020, 1, 1)


def make_truth(usage, days=2, seed=0):
    cal = Calendar(epoch=EPOCH, tz_hours=0.0)
    return usage.generate(np.random.default_rng(seed), round_grid(days * 86_400.0), cal)


class TestProbeOrder:
    def test_is_permutation(self):
        order = probe_order(100, seed=5)
        assert sorted(order.tolist()) == list(range(100))

    def test_deterministic(self):
        assert np.array_equal(probe_order(50, 7), probe_order(50, 7))

    def test_seed_changes_order(self):
        assert not np.array_equal(probe_order(50, 7), probe_order(50, 8))


class TestTrinocularObserver:
    def test_stops_at_first_positive(self):
        # a fully responsive block: exactly one probe per round
        truth = make_truth(ServerFarmUsage(n_servers=64, maintenance_rate_per_day=0.0), days=1)
        order = probe_order(truth.n_addresses, 1)
        log = TrinocularObserver("e").observe(truth, order)
        rounds = np.unique(np.floor(log.times / 660.0))
        assert len(log) == rounds.size  # one probe per round
        assert log.results.all()

    def test_probes_up_to_limit_when_dark(self):
        truth = make_truth(SparseUsage(n_addresses=40, mean_on_days=0.0001, mean_off_days=100.0))
        # force everything off
        truth.active[:] = False
        order = probe_order(truth.n_addresses, 1)
        obs = TrinocularObserver("e", max_probes_per_round=15)
        log = obs.observe(truth, order)
        per_round = np.bincount(np.floor(log.times / 660.0).astype(int))
        assert per_round.max() == 15
        assert not log.results.any()

    def test_cursor_walks_fixed_order(self):
        truth = make_truth(NatGatewayUsage(n_routers=0, stale_addresses=8), days=1)
        truth.active[:] = False
        order = probe_order(truth.n_addresses, 2)
        log = TrinocularObserver("e", max_probes_per_round=4).observe(truth, order)
        expected = truth.addresses[order[np.arange(len(log)) % truth.n_addresses]]
        assert np.array_equal(log.addresses, expected)

    def test_phase_offset_shifts_times(self):
        truth = make_truth(NatGatewayUsage(n_routers=2, stale_addresses=0), days=1)
        order = probe_order(truth.n_addresses, 3)
        log = TrinocularObserver("e", phase_offset_s=123.0).observe(truth, order)
        assert log.times[0] == pytest.approx(123.0)

    def test_loss_converts_replies_to_silence(self):
        truth = make_truth(ServerFarmUsage(n_servers=32, maintenance_rate_per_day=0.0), days=2)
        order = probe_order(truth.n_addresses, 4)
        lossless = TrinocularObserver("e").observe(truth, order, NoLoss())
        lossy = TrinocularObserver("e").observe(
            truth, order, BernoulliLoss(0.3), np.random.default_rng(1)
        )
        assert lossless.reply_rate() == pytest.approx(1.0)
        assert 0.5 < lossy.reply_rate() < 0.9

    def test_window_limits(self):
        truth = make_truth(NatGatewayUsage(n_routers=2, stale_addresses=0), days=3)
        order = probe_order(truth.n_addresses, 5)
        log = TrinocularObserver("e").observe(
            truth, order, start_s=86_400.0, duration_s=86_400.0
        )
        assert log.times[0] >= 86_400.0
        assert log.times[-1] < 2 * 86_400.0

    def test_rejects_wrong_order_length(self):
        truth = make_truth(NatGatewayUsage(n_routers=2, stale_addresses=0), days=1)
        with pytest.raises(ValueError, match="permute"):
            TrinocularObserver("e").observe(truth, np.arange(5))

    def test_results_match_truth_without_loss(self):
        truth = make_truth(WorkplaceUsage(n_desktops=20, n_servers=1), days=3)
        order = probe_order(truth.n_addresses, 6)
        log = TrinocularObserver("e").observe(truth, order, NoLoss())
        addr_row = {int(a): i for i, a in enumerate(truth.addresses)}
        for k in range(0, len(log), 97):
            row = addr_row[int(log.addresses[k])]
            col = truth.column_of(float(log.times[k]))
            assert bool(log.results[k]) == bool(truth.active[row, col])


class TestAdditionalProber:
    def test_fixed_probes_per_round(self):
        truth = make_truth(ServerFarmUsage(n_servers=256, maintenance_rate_per_day=0.0), days=1)
        prober = AdditionalProber()
        n = prober.probes_per_round(256)
        assert n == 8  # the paper's cap for a full block
        log = prober.observe(truth, probe_order(256, 7))
        per_round = np.bincount(np.floor(log.times / 660.0).astype(int))
        assert per_round.max() == n

    def test_guarantees_six_hour_scan(self):
        # 256 always-on addresses: the adaptive prober needs 256 rounds,
        # the additional prober must finish within 6 hours
        prober = AdditionalProber(target_scan_hours=6.0)
        n = prober.probes_per_round(256)
        rounds_needed = int(np.ceil(256 / n))
        assert rounds_needed * 660.0 <= 6.5 * 3600.0

    def test_small_blocks_get_one_probe(self):
        assert AdditionalProber().probes_per_round(8) == 1


class TestSurveyObserver:
    def test_probes_every_address_every_round(self):
        truth = make_truth(WorkplaceUsage(n_desktops=10, n_servers=1, stale_addresses=2), days=1)
        log = SurveyObserver().observe(truth)
        m = truth.n_addresses
        first_round = log.addresses[:m]
        assert sorted(first_round.tolist()) == sorted(truth.addresses.tolist())

    def test_reconstruction_ground_truth_quality(self):
        truth = make_truth(WorkplaceUsage(n_desktops=30, n_servers=2), days=2)
        log = SurveyObserver().observe(truth)
        # survey reply rate equals the truth's mean activity
        assert log.reply_rate() == pytest.approx(float(truth.active.mean()), abs=0.02)
