"""Integration tests: the block pipeline and the dataset builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import BlockPipeline
from repro.datasets.builder import DatasetBuilder
from repro.datasets.catalog import CATALOG, TRINOCULAR_SITES, dataset


class TestCatalog:
    def test_paper_datasets_present(self):
        for name in (
            "2019q4-w",
            "2020q1-w",
            "2020q1-ejnw",
            "2020m1-ejnw",
            "2020h1-ejnw",
            "2020it89-w",
            "2023q1-ejnw",
        ):
            assert name in CATALOG

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            dataset("2019q9-z")

    def test_survey_flag(self):
        assert dataset("2020it89-w").survey
        assert not dataset("2020q1-w").survey

    def test_window_resolution(self):
        from datetime import datetime

        ds = dataset("2020q1-w")
        start = ds.start_s(datetime(2019, 10, 1))
        assert start == pytest.approx(92 * 86_400.0)
        assert ds.duration_s == pytest.approx(12 * 7 * 86_400.0)

    def test_observer_names_are_known_sites(self):
        for ds in CATALOG.values():
            for obs in ds.observers:
                assert obs in TRINOCULAR_SITES or obs == "survey"

    def test_it89_matches_paper_dates(self):
        from datetime import date

        assert dataset("2020it89-w").start == date(2020, 2, 19)
        assert dataset("2020it89-w").weeks == 2


class TestPipeline:
    def test_full_pipeline_on_workplace_block(self, workplace_block):
        _, truth, order, log = workplace_block
        analysis = BlockPipeline().analyze([log], truth.addresses)
        assert analysis.classification.responsive
        assert analysis.classification.is_diurnal
        assert analysis.is_change_sensitive
        # 14 days, no WFH: no downward human changes expected far from edges
        assert analysis.trend is not None

    def test_detect_on_all_forces_trend(self, workplace_block):
        _, truth, order, log = workplace_block
        pipeline = BlockPipeline(
            detect_on_all=True,
        )
        analysis = pipeline.analyze([log], truth.addresses)
        assert analysis.trend is not None
        assert analysis.changes is not None

    def test_no_trend_without_change_sensitivity(self, workplace_block):
        _, truth, order, log = workplace_block
        # an empty E(b) intersection makes the block unresponsive
        analysis = BlockPipeline().analyze([log], np.array([250, 251], dtype=np.int16))
        assert not analysis.classification.responsive
        assert analysis.trend is None
        assert analysis.downward_change_days() == ()

    def test_repair_toggle_changes_nothing_without_loss(self, workplace_block):
        _, truth, order, log = workplace_block
        with_repair = BlockPipeline(apply_repair=True).analyze([log], truth.addresses)
        without = BlockPipeline(apply_repair=False).analyze([log], truth.addresses)
        a = with_repair.reconstruction.counts.dropna()
        b = without.reconstruction.counts.dropna()
        # near-lossless path: repair flips (almost) nothing
        assert abs(len(a) - len(b)) < 5


class TestDatasetBuilder:
    @pytest.fixture(scope="class")
    def builder(self, small_world):
        return DatasetBuilder(small_world)

    def test_observe_dataset_returns_one_log_per_observer(self, builder, small_world):
        spec = next(s for s in small_world.blocks if s.responsive_by_design)
        logs = builder.observe_dataset(spec, "2020m1-ejnw")
        assert [log.observer for log in logs] == ["e", "j", "n", "w"]

    def test_observation_cache_slices_consistently(self, builder, small_world):
        spec = next(s for s in small_world.blocks if s.responsive_by_design)
        ds = dataset("2020m1-ejnw")
        start = ds.start_s(small_world.epoch)
        full = builder.observe(spec, "e", start, ds.duration_s)
        half = builder.observe(spec, "e", start, ds.duration_s / 2)
        assert len(half) < len(full)
        assert np.array_equal(half.times, full.slice_time(start, start + ds.duration_s / 2).times)

    def test_observers_differ(self, builder, small_world):
        spec = next(s for s in small_world.blocks if s.responsive_by_design)
        logs = builder.observe_dataset(spec, "2020m1-ejnw")
        assert not np.array_equal(logs[0].times, logs[1].times)

    def test_analyze_counts_firewalled_blocks_as_unresponsive(self, builder):
        result = builder.analyze("2020m1-w")
        funnel = result.funnel()
        assert funnel.routed == 60
        assert funnel.not_responsive >= sum(
            not s.responsive_by_design for s in builder.world.blocks
        )

    def test_funnel_arithmetic(self, builder):
        funnel = builder.analyze("2020m1-w").funnel()
        assert funnel.responsive + funnel.not_responsive == funnel.routed
        assert funnel.diurnal + funnel.not_diurnal == funnel.responsive
        assert funnel.wide_swing + funnel.narrow_swing == funnel.responsive
        assert (
            funnel.change_sensitive + funnel.not_change_sensitive == funnel.responsive
        )

    def test_records_have_geo(self, builder):
        result = builder.analyze("2020m1-w")
        records = result.records()
        assert len(records) == 60
        assert all(r.geo.country for r in records)

    def test_availability_in_unit_interval(self, builder, small_world):
        spec = next(s for s in small_world.blocks if s.responsive_by_design)
        a = builder.availability(spec, 0.0, 14 * 86_400.0)
        assert 0.0 <= a <= 1.0

    def test_survey_dataset_probes_every_address_each_round(self, builder, small_world):
        spec = next(s for s in small_world.blocks if s.responsive_by_design)
        survey_logs = builder.observe_dataset(spec, "2020it89-w")
        assert len(survey_logs) == 1
        log = survey_logs[0]
        truth = builder.truth(spec, log.times[0], 1.0)
        n_rounds = int(np.ceil(dataset("2020it89-w").duration_s / 660.0))
        assert len(log) == pytest.approx(n_rounds * truth.n_addresses, rel=0.01)
