"""Unit tests for outage detection and network-type classification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.changes import ChangeEvent
from repro.core.network_type import (
    NetworkTypeClassifier,
    timezone_from_longitude,
)
from repro.core.outages import OutageDetector, OutageInterval, corroborate_changes
from repro.timeseries.series import SECONDS_PER_DAY, TimeSeries

HOUR = 3600.0


def hourly_series(values):
    values = np.asarray(values, dtype=float)
    return TimeSeries(np.arange(values.size) * HOUR, values)


class TestOutageDetector:
    def _series_with_outage(self, n_days=14, start_h=120, hours=8, level=20.0):
        values = np.full(24 * n_days, level)
        values[start_h : start_h + hours] = 0.0
        return hourly_series(values)

    def test_detects_simple_outage(self):
        ts = self._series_with_outage()
        intervals = OutageDetector().detect(ts)
        assert len(intervals) == 1
        iv = intervals[0]
        assert 119 * HOUR <= iv.start_s <= 121 * HOUR
        assert 6 * HOUR <= iv.duration_s <= 10 * HOUR

    def test_no_outage_on_steady_series(self):
        assert OutageDetector().detect(hourly_series(np.full(24 * 14, 20.0))) == ()

    def test_dark_blocks_are_not_outages(self):
        assert OutageDetector().detect(hourly_series(np.zeros(24 * 14))) == ()

    def test_diurnal_troughs_not_flagged(self):
        t = np.arange(24 * 14)
        values = 10 + 8 * np.sin(2 * np.pi * t / 24.0)  # dips to 2, not to ~0
        assert OutageDetector().detect(hourly_series(values)) == ()

    def test_short_blips_ignored(self):
        detector = OutageDetector(min_duration_s=4 * HOUR)
        values = np.full(24 * 14, 20.0)
        values[100] = 0.0  # a single-hour blip
        assert detector.detect(hourly_series(values)) == ()

    def test_long_declines_are_not_outages(self):
        # a permanent shutdown longer than max_duration is a *change*
        values = np.full(24 * 30, 20.0)
        values[24 * 10 :] = 0.0
        intervals = OutageDetector().detect(hourly_series(values))
        assert intervals == ()

    def test_open_ended_outage_within_budget(self):
        values = np.full(24 * 14, 20.0)
        values[-30:] = 0.0  # still out at series end (30 h)
        intervals = OutageDetector().detect(hourly_series(values))
        assert len(intervals) == 1

    def test_nan_samples_skipped(self):
        ts = self._series_with_outage()
        values = ts.values.copy()
        values[:10] = np.nan
        intervals = OutageDetector().detect(ts.with_values(values))
        assert len(intervals) == 1


class TestOutageInterval:
    def test_overlap(self):
        iv = OutageInterval(100.0, 200.0)
        assert iv.overlaps(150.0, 300.0)
        assert iv.overlaps(250.0, 300.0, slack_s=60.0)
        assert not iv.overlaps(250.0, 300.0)


class TestCorroboration:
    def _event(self, start, end, cause="human-candidate"):
        return ChangeEvent(
            time_s=end, start_s=start, end_s=end, direction=-1, magnitude=-2.0, cause=cause
        )

    def test_overlapping_event_relabelled(self):
        events = (self._event(90.0, 210.0),)
        out = corroborate_changes(events, (OutageInterval(100.0, 200.0),), slack_s=0.0)
        assert out[0].cause == "outage-confirmed"

    def test_distant_event_untouched(self):
        events = (self._event(1e6, 1e6 + 100),)
        out = corroborate_changes(events, (OutageInterval(100.0, 200.0),))
        assert out[0].cause == "human-candidate"

    def test_boundary_transient_not_relabelled(self):
        events = (self._event(90.0, 210.0, cause="boundary-transient"),)
        out = corroborate_changes(events, (OutageInterval(100.0, 200.0),))
        assert out[0].cause == "boundary-transient"

    def test_no_outages_is_identity(self):
        events = (self._event(0.0, 1.0),)
        assert corroborate_changes(events, ()) is events


class TestNetworkTypeClassifier:
    def _profile(self, n_days, tz, kind):
        """Hourly counts for a synthetic workplace or home block."""
        t = np.arange(24 * n_days)
        utc_hour = t % 24
        local_hour = (utc_hour + tz) % 24
        day = t // 24
        weekday = day % 7  # epoch_weekday=0
        if kind == "workplace":
            active = (9 <= local_hour) & (local_hour < 17) & (weekday < 5)
            return hourly_series(2.0 + 20.0 * active)
        active = (18 <= local_hour) & (local_hour < 24)
        weekend_boost = (weekday >= 5) & (10 <= local_hour) & (local_hour < 24)
        return hourly_series(1.0 + 15.0 * (active | weekend_boost))

    @pytest.mark.parametrize("tz", [-8.0, 0.0, 8.0])
    def test_workplace_classified(self, tz):
        verdict = NetworkTypeClassifier().classify(
            self._profile(21, tz, "workplace"), tz_hours=tz
        )
        assert verdict.is_workplace
        assert 9 <= verdict.peak_hour < 17
        assert verdict.weekend_ratio < 0.6

    @pytest.mark.parametrize("tz", [-8.0, 0.0, 8.0])
    def test_home_classified(self, tz):
        verdict = NetworkTypeClassifier().classify(
            self._profile(21, tz, "home"), tz_hours=tz
        )
        assert verdict.is_home

    def test_flat_block_is_ambiguous(self):
        verdict = NetworkTypeClassifier().classify(
            hourly_series(np.full(24 * 21, 5.0)), tz_hours=0.0
        )
        assert verdict.label == "ambiguous"

    def test_short_series_is_ambiguous(self):
        verdict = NetworkTypeClassifier().classify(
            self._profile(3, 0.0, "workplace"), tz_hours=0.0
        )
        assert verdict.label == "ambiguous"
        assert verdict.n_days == 0

    def test_timezone_from_longitude(self):
        assert timezone_from_longitude(0.0) == 0
        assert timezone_from_longitude(116.4) == 8  # Beijing
        assert timezone_from_longitude(-118.25) == -8  # Los Angeles
