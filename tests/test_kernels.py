"""Vectorized kernels against their scalar reference oracles.

Each performance-critical kernel keeps its original scalar
implementation as a ``*_reference`` oracle; these property-style tests
sweep randomized worlds and adversarial edge cases asserting the
vectorized path reproduces the oracle exactly (bit-for-bit for the
prober and reconstruction, exact alarms + allclose traces for CUSUM,
whose running-minimum identity reorders float additions).
"""

from __future__ import annotations

from datetime import datetime

import numpy as np
import pytest

from repro.core.reconstruction import (
    full_scan_durations,
    full_scan_durations_reference,
)
from repro.net.events import Calendar
from repro.net.loss import BernoulliLoss, NoLoss
from repro.net.observations import ObservationSeries
from repro.net.prober import TrinocularObserver, probe_order
from repro.net.usage import (
    NatGatewayUsage,
    ServerFarmUsage,
    SparseUsage,
    WorkplaceUsage,
    round_grid,
)
from repro.timeseries.detect import detect_cusum, detect_cusum_reference

EPOCH = datetime(2020, 1, 1)


def make_truth(usage, days=2.0, seed=0, tz_hours=0.0):
    cal = Calendar(epoch=EPOCH, tz_hours=tz_hours)
    return usage.generate(np.random.default_rng(seed), round_grid(days * 86_400.0), cal)


def assert_same_series(fast: ObservationSeries, slow: ObservationSeries) -> None:
    assert np.array_equal(fast.times, slow.times)
    assert np.array_equal(fast.addresses, slow.addresses)
    assert np.array_equal(fast.results, slow.results)


def both_observations(obs, truth, order, loss, seed, **kwargs):
    """Run the vectorized and reference probers on twin RNG streams."""
    rng_fast = np.random.default_rng(seed)
    rng_slow = np.random.default_rng(seed)
    fast = obs.observe(truth, order, loss, rng_fast, **kwargs)
    slow = obs.observe_reference(truth, order, loss, rng_slow, **kwargs)
    assert_same_series(fast, slow)
    # same number of uniforms consumed -> identical generator state after
    assert rng_fast.bit_generator.state == rng_slow.bit_generator.state
    return fast


class TestProberEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_worlds(self, seed):
        """Random usage model / loss / cursor / phase sweeps match exactly."""
        rng = np.random.default_rng(seed)
        usage = [
            WorkplaceUsage(n_desktops=int(rng.integers(5, 60)), n_servers=2),
            SparseUsage(n_addresses=int(rng.integers(8, 48))),
            NatGatewayUsage(n_routers=2, stale_addresses=int(rng.integers(0, 12))),
            ServerFarmUsage(n_servers=int(rng.integers(4, 40))),
        ][seed % 4]
        truth = make_truth(usage, days=float(rng.uniform(0.5, 3.0)), seed=seed)
        order = probe_order(truth.n_addresses, seed)
        loss = BernoulliLoss(p=float(rng.uniform(0.0, 0.7)))
        obs = TrinocularObserver(
            "e",
            phase_offset_s=float(rng.uniform(0.0, 660.0)),
            max_probes_per_round=int(rng.integers(1, 20)),
        )
        log = both_observations(
            obs,
            truth,
            order,
            loss,
            seed,
            start_cursor=int(rng.integers(truth.n_addresses)),
        )
        assert len(log) > 0

    def test_no_loss_fast_path(self):
        truth = make_truth(WorkplaceUsage(n_desktops=30, n_servers=1), days=1.5, seed=3)
        order = probe_order(truth.n_addresses, 3)
        both_observations(TrinocularObserver("e"), truth, order, NoLoss(), 3)

    def test_all_dark_block(self):
        """Every round exhausts its probe budget without a reply."""
        truth = make_truth(SparseUsage(n_addresses=24), days=1.0, seed=1)
        truth.active[:] = False
        order = probe_order(truth.n_addresses, 1)
        log = both_observations(
            TrinocularObserver("e", max_probes_per_round=7), truth, order, NoLoss(), 1
        )
        assert not log.results.any()

    def test_heavy_loss(self):
        """Near-total loss: most rounds burn their budget, many draws used."""
        truth = make_truth(ServerFarmUsage(n_servers=16), days=1.0, seed=2)
        order = probe_order(truth.n_addresses, 2)
        log = both_observations(
            TrinocularObserver("e"), truth, order, BernoulliLoss(p=0.99), 2
        )
        assert len(log) > 0 and log.results.mean() < 0.5

    def test_zero_duration(self):
        truth = make_truth(ServerFarmUsage(n_servers=8), days=1.0, seed=4)
        order = probe_order(truth.n_addresses, 4)
        log = both_observations(
            TrinocularObserver("e"), truth, order, NoLoss(), 4, duration_s=0.0
        )
        assert len(log) == 0

    def test_partial_final_round(self):
        """A window ending mid-round truncates that round's probes alike."""
        truth = make_truth(SparseUsage(n_addresses=20), days=1.0, seed=5)
        truth.active[:] = False
        order = probe_order(truth.n_addresses, 5)
        both_observations(
            TrinocularObserver("e", max_probes_per_round=15),
            truth,
            order,
            NoLoss(),
            5,
            duration_s=660.0 * 3 + 7.0,  # 4th round fits only 3 probe slots
        )

    def test_single_address_block(self):
        truth = make_truth(ServerFarmUsage(n_servers=1), days=0.5, seed=6)
        order = probe_order(truth.n_addresses, 6)
        both_observations(
            TrinocularObserver("e"), truth, order, BernoulliLoss(p=0.5), 6
        )

    def test_budget_larger_than_block(self):
        """max_probes = min(limit, m) when the block is tiny."""
        truth = make_truth(SparseUsage(n_addresses=4), days=0.5, seed=7)
        truth.active[:] = False
        order = probe_order(truth.n_addresses, 7)
        log = both_observations(
            TrinocularObserver("e", max_probes_per_round=15), truth, order, NoLoss(), 7
        )
        per_round = np.bincount(np.floor(log.times / 660.0).astype(int))
        assert per_round.max() == truth.n_addresses  # budget clamps to m

    def test_phase_straddles_column_boundary(self):
        """Probe windows crossing a truth-column edge pick the right column."""
        truth = make_truth(WorkplaceUsage(n_desktops=40, n_servers=2), days=1.0, seed=8)
        order = probe_order(truth.n_addresses, 8)
        # place round starts a few seconds before each column boundary so
        # the 3s-spaced candidate window crosses into the next column
        obs = TrinocularObserver("e", phase_offset_s=660.0 - 4.0)
        both_observations(obs, truth, order, BernoulliLoss(p=0.3), 8)

    def test_offset_window(self):
        truth = make_truth(WorkplaceUsage(n_desktops=25, n_servers=1), days=3.0, seed=9)
        order = probe_order(truth.n_addresses, 9)
        both_observations(
            TrinocularObserver("e"),
            truth,
            order,
            BernoulliLoss(p=0.2),
            9,
            start_s=86_400.0,
            duration_s=86_400.0,
            start_cursor=11,
        )


class TestFullScanEquivalence:
    @staticmethod
    def random_series(rng, n, pool):
        times = np.sort(rng.uniform(0.0, 1e5, size=n))
        addrs = rng.choice(pool, size=n).astype(np.int16)
        return ObservationSeries(
            times=times, addresses=addrs, results=rng.random(n) < 0.5
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized(self, seed):
        rng = np.random.default_rng(seed)
        pool = np.arange(1, int(rng.integers(2, 30)), dtype=np.int16)
        obs = self.random_series(rng, int(rng.integers(1, 400)), pool)
        eb = rng.choice(pool, size=int(rng.integers(1, pool.size + 1)), replace=False)
        max_scans = None if seed % 2 else int(rng.integers(1, 5))
        fast = full_scan_durations(obs, eb, max_scans=max_scans)
        slow = full_scan_durations_reference(obs, eb, max_scans=max_scans)
        assert np.array_equal(fast, slow)

    def test_empty_series(self):
        obs = ObservationSeries(
            times=np.array([]), addresses=np.array([], dtype=np.int16),
            results=np.array([], dtype=bool),
        )
        eb = np.array([1, 2], dtype=np.int16)
        assert full_scan_durations(obs, eb).size == 0
        assert full_scan_durations_reference(obs, eb).size == 0

    def test_address_never_probed(self):
        obs = ObservationSeries(
            times=np.array([0.0, 1.0]),
            addresses=np.array([1, 1], dtype=np.int16),
            results=np.array([True, True]),
        )
        eb = np.array([1, 2], dtype=np.int16)
        assert full_scan_durations(obs, eb).size == 0
        assert full_scan_durations_reference(obs, eb).size == 0

    def test_simulated_block(self):
        """End-to-end: a real probe log instead of synthetic indices."""
        truth = make_truth(WorkplaceUsage(n_desktops=30, n_servers=2), days=4.0, seed=10)
        order = probe_order(truth.n_addresses, 10)
        log = TrinocularObserver("e").observe(
            truth, order, NoLoss(), np.random.default_rng(10)
        )
        fast = full_scan_durations(log, truth.addresses)
        slow = full_scan_durations_reference(log, truth.addresses)
        assert np.array_equal(fast, slow)
        assert fast.size > 0


class TestCusumEquivalence:
    @staticmethod
    def check(x, threshold=1.0, drift=0.001, estimate_ending=True):
        fast = detect_cusum(x, threshold, drift, estimate_ending=estimate_ending)
        slow = detect_cusum_reference(
            x, threshold, drift, estimate_ending=estimate_ending
        )
        assert fast.alarms == slow.alarms  # exact: indices, directions, amplitudes
        np.testing.assert_allclose(fast.gp, slow.gp, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(fast.gn, slow.gn, rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_walks(self, seed):
        rng = np.random.default_rng(seed)
        x = np.cumsum(rng.normal(0.0, 0.4, size=int(rng.integers(10, 2000))))
        self.check(
            x,
            threshold=float(rng.uniform(0.3, 3.0)),
            drift=float(rng.uniform(0.0, 0.05)),
            estimate_ending=bool(seed % 2),
        )

    def test_constant_series(self):
        self.check(np.full(500, 3.7))

    def test_step_change(self):
        self.check(np.concatenate([np.zeros(100), np.ones(100) * 5.0]))

    def test_empty_and_tiny(self):
        self.check(np.array([]))
        self.check(np.array([1.0]))

    def test_nan_forward_fill(self):
        x = np.concatenate([np.zeros(50), np.full(10, np.nan), np.ones(50) * 4.0])
        self.check(x)

    def test_all_nan(self):
        self.check(np.full(40, np.nan))


class TestReplyRateByAddress:
    def test_matches_naive_on_large_series(self):
        """Regression: bincount path equals the per-address mean exactly."""
        rng = np.random.default_rng(42)
        n = 200_000
        addrs = rng.integers(1, 255, size=n).astype(np.int16)
        obs = ObservationSeries(
            times=np.sort(rng.uniform(0.0, 1e6, size=n)),
            addresses=addrs,
            results=rng.random(n) < 0.3,
        )
        rates = obs.reply_rate_by_address()
        for a in np.unique(addrs)[:32]:
            mask = obs.addresses == a
            assert rates[int(a)] == float(obs.results[mask].mean())
        assert set(rates) == set(int(a) for a in np.unique(addrs))
