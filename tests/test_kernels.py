"""Vectorized kernels against their scalar reference oracles.

Each performance-critical kernel keeps its original scalar
implementation as a ``*_reference`` oracle; these property-style tests
sweep randomized worlds and adversarial edge cases asserting the
vectorized path reproduces the oracle exactly (bit-for-bit for the
prober and reconstruction, exact alarms + allclose traces for CUSUM,
whose running-minimum identity reorders float additions).
"""

from __future__ import annotations

from datetime import datetime

import numpy as np
import pytest

from repro.core.reconstruction import (
    full_scan_durations,
    full_scan_durations_reference,
)
from repro.net.events import Calendar
from repro.net.loss import BernoulliLoss, NoLoss
from repro.net.observations import ObservationSeries
from repro.net.prober import TrinocularObserver, probe_order
from repro.net.usage import (
    NatGatewayUsage,
    ServerFarmUsage,
    SparseUsage,
    WorkplaceUsage,
    round_grid,
)
from repro.timeseries.detect import detect_cusum, detect_cusum_reference

EPOCH = datetime(2020, 1, 1)


def make_truth(usage, days=2.0, seed=0, tz_hours=0.0):
    cal = Calendar(epoch=EPOCH, tz_hours=tz_hours)
    return usage.generate(np.random.default_rng(seed), round_grid(days * 86_400.0), cal)


def assert_same_series(fast: ObservationSeries, slow: ObservationSeries) -> None:
    assert np.array_equal(fast.times, slow.times)
    assert np.array_equal(fast.addresses, slow.addresses)
    assert np.array_equal(fast.results, slow.results)


def both_observations(obs, truth, order, loss, seed, **kwargs):
    """Run the vectorized and reference probers on twin RNG streams."""
    rng_fast = np.random.default_rng(seed)
    rng_slow = np.random.default_rng(seed)
    fast = obs.observe(truth, order, loss, rng_fast, **kwargs)
    slow = obs.observe_reference(truth, order, loss, rng_slow, **kwargs)
    assert_same_series(fast, slow)
    # same number of uniforms consumed -> identical generator state after
    assert rng_fast.bit_generator.state == rng_slow.bit_generator.state
    return fast


class TestProberEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_worlds(self, seed):
        """Random usage model / loss / cursor / phase sweeps match exactly."""
        rng = np.random.default_rng(seed)
        usage = [
            WorkplaceUsage(n_desktops=int(rng.integers(5, 60)), n_servers=2),
            SparseUsage(n_addresses=int(rng.integers(8, 48))),
            NatGatewayUsage(n_routers=2, stale_addresses=int(rng.integers(0, 12))),
            ServerFarmUsage(n_servers=int(rng.integers(4, 40))),
        ][seed % 4]
        truth = make_truth(usage, days=float(rng.uniform(0.5, 3.0)), seed=seed)
        order = probe_order(truth.n_addresses, seed)
        loss = BernoulliLoss(p=float(rng.uniform(0.0, 0.7)))
        obs = TrinocularObserver(
            "e",
            phase_offset_s=float(rng.uniform(0.0, 660.0)),
            max_probes_per_round=int(rng.integers(1, 20)),
        )
        log = both_observations(
            obs,
            truth,
            order,
            loss,
            seed,
            start_cursor=int(rng.integers(truth.n_addresses)),
        )
        assert len(log) > 0

    def test_no_loss_fast_path(self):
        truth = make_truth(WorkplaceUsage(n_desktops=30, n_servers=1), days=1.5, seed=3)
        order = probe_order(truth.n_addresses, 3)
        both_observations(TrinocularObserver("e"), truth, order, NoLoss(), 3)

    def test_all_dark_block(self):
        """Every round exhausts its probe budget without a reply."""
        truth = make_truth(SparseUsage(n_addresses=24), days=1.0, seed=1)
        truth.active[:] = False
        order = probe_order(truth.n_addresses, 1)
        log = both_observations(
            TrinocularObserver("e", max_probes_per_round=7), truth, order, NoLoss(), 1
        )
        assert not log.results.any()

    def test_heavy_loss(self):
        """Near-total loss: most rounds burn their budget, many draws used."""
        truth = make_truth(ServerFarmUsage(n_servers=16), days=1.0, seed=2)
        order = probe_order(truth.n_addresses, 2)
        log = both_observations(
            TrinocularObserver("e"), truth, order, BernoulliLoss(p=0.99), 2
        )
        assert len(log) > 0 and log.results.mean() < 0.5

    def test_zero_duration(self):
        truth = make_truth(ServerFarmUsage(n_servers=8), days=1.0, seed=4)
        order = probe_order(truth.n_addresses, 4)
        log = both_observations(
            TrinocularObserver("e"), truth, order, NoLoss(), 4, duration_s=0.0
        )
        assert len(log) == 0

    def test_partial_final_round(self):
        """A window ending mid-round truncates that round's probes alike."""
        truth = make_truth(SparseUsage(n_addresses=20), days=1.0, seed=5)
        truth.active[:] = False
        order = probe_order(truth.n_addresses, 5)
        both_observations(
            TrinocularObserver("e", max_probes_per_round=15),
            truth,
            order,
            NoLoss(),
            5,
            duration_s=660.0 * 3 + 7.0,  # 4th round fits only 3 probe slots
        )

    def test_single_address_block(self):
        truth = make_truth(ServerFarmUsage(n_servers=1), days=0.5, seed=6)
        order = probe_order(truth.n_addresses, 6)
        both_observations(
            TrinocularObserver("e"), truth, order, BernoulliLoss(p=0.5), 6
        )

    def test_budget_larger_than_block(self):
        """max_probes = min(limit, m) when the block is tiny."""
        truth = make_truth(SparseUsage(n_addresses=4), days=0.5, seed=7)
        truth.active[:] = False
        order = probe_order(truth.n_addresses, 7)
        log = both_observations(
            TrinocularObserver("e", max_probes_per_round=15), truth, order, NoLoss(), 7
        )
        per_round = np.bincount(np.floor(log.times / 660.0).astype(int))
        assert per_round.max() == truth.n_addresses  # budget clamps to m

    def test_phase_straddles_column_boundary(self):
        """Probe windows crossing a truth-column edge pick the right column."""
        truth = make_truth(WorkplaceUsage(n_desktops=40, n_servers=2), days=1.0, seed=8)
        order = probe_order(truth.n_addresses, 8)
        # place round starts a few seconds before each column boundary so
        # the 3s-spaced candidate window crosses into the next column
        obs = TrinocularObserver("e", phase_offset_s=660.0 - 4.0)
        both_observations(obs, truth, order, BernoulliLoss(p=0.3), 8)

    def test_offset_window(self):
        truth = make_truth(WorkplaceUsage(n_desktops=25, n_servers=1), days=3.0, seed=9)
        order = probe_order(truth.n_addresses, 9)
        both_observations(
            TrinocularObserver("e"),
            truth,
            order,
            BernoulliLoss(p=0.2),
            9,
            start_s=86_400.0,
            duration_s=86_400.0,
            start_cursor=11,
        )


class TestFullScanEquivalence:
    @staticmethod
    def random_series(rng, n, pool):
        times = np.sort(rng.uniform(0.0, 1e5, size=n))
        addrs = rng.choice(pool, size=n).astype(np.int16)
        return ObservationSeries(
            times=times, addresses=addrs, results=rng.random(n) < 0.5
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized(self, seed):
        rng = np.random.default_rng(seed)
        pool = np.arange(1, int(rng.integers(2, 30)), dtype=np.int16)
        obs = self.random_series(rng, int(rng.integers(1, 400)), pool)
        eb = rng.choice(pool, size=int(rng.integers(1, pool.size + 1)), replace=False)
        max_scans = None if seed % 2 else int(rng.integers(1, 5))
        fast = full_scan_durations(obs, eb, max_scans=max_scans)
        slow = full_scan_durations_reference(obs, eb, max_scans=max_scans)
        assert np.array_equal(fast, slow)

    def test_empty_series(self):
        obs = ObservationSeries(
            times=np.array([]), addresses=np.array([], dtype=np.int16),
            results=np.array([], dtype=bool),
        )
        eb = np.array([1, 2], dtype=np.int16)
        assert full_scan_durations(obs, eb).size == 0
        assert full_scan_durations_reference(obs, eb).size == 0

    def test_address_never_probed(self):
        obs = ObservationSeries(
            times=np.array([0.0, 1.0]),
            addresses=np.array([1, 1], dtype=np.int16),
            results=np.array([True, True]),
        )
        eb = np.array([1, 2], dtype=np.int16)
        assert full_scan_durations(obs, eb).size == 0
        assert full_scan_durations_reference(obs, eb).size == 0

    def test_simulated_block(self):
        """End-to-end: a real probe log instead of synthetic indices."""
        truth = make_truth(WorkplaceUsage(n_desktops=30, n_servers=2), days=4.0, seed=10)
        order = probe_order(truth.n_addresses, 10)
        log = TrinocularObserver("e").observe(
            truth, order, NoLoss(), np.random.default_rng(10)
        )
        fast = full_scan_durations(log, truth.addresses)
        slow = full_scan_durations_reference(log, truth.addresses)
        assert np.array_equal(fast, slow)
        assert fast.size > 0


class TestCusumEquivalence:
    @staticmethod
    def check(x, threshold=1.0, drift=0.001, estimate_ending=True):
        fast = detect_cusum(x, threshold, drift, estimate_ending=estimate_ending)
        slow = detect_cusum_reference(
            x, threshold, drift, estimate_ending=estimate_ending
        )
        assert fast.alarms == slow.alarms  # exact: indices, directions, amplitudes
        np.testing.assert_allclose(fast.gp, slow.gp, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(fast.gn, slow.gn, rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_walks(self, seed):
        rng = np.random.default_rng(seed)
        x = np.cumsum(rng.normal(0.0, 0.4, size=int(rng.integers(10, 2000))))
        self.check(
            x,
            threshold=float(rng.uniform(0.3, 3.0)),
            drift=float(rng.uniform(0.0, 0.05)),
            estimate_ending=bool(seed % 2),
        )

    def test_constant_series(self):
        self.check(np.full(500, 3.7))

    def test_step_change(self):
        self.check(np.concatenate([np.zeros(100), np.ones(100) * 5.0]))

    def test_empty_and_tiny(self):
        self.check(np.array([]))
        self.check(np.array([1.0]))

    def test_nan_forward_fill(self):
        x = np.concatenate([np.zeros(50), np.full(10, np.nan), np.ones(50) * 4.0])
        self.check(x)

    def test_all_nan(self):
        self.check(np.full(40, np.nan))


class TestReplyRateByAddress:
    def test_matches_naive_on_large_series(self):
        """Regression: bincount path equals the per-address mean exactly."""
        rng = np.random.default_rng(42)
        n = 200_000
        addrs = rng.integers(1, 255, size=n).astype(np.int16)
        obs = ObservationSeries(
            times=np.sort(rng.uniform(0.0, 1e6, size=n)),
            addresses=addrs,
            results=rng.random(n) < 0.3,
        )
        rates = obs.reply_rate_by_address()
        for a in np.unique(addrs)[:32]:
            mask = obs.addresses == a
            assert rates[int(a)] == float(obs.results[mask].mean())
        assert set(rates) == set(int(a) for a in np.unique(addrs))


# ---------------------------------------------------------------------------
# batched columnar kernels vs their per-block scalar paths
# ---------------------------------------------------------------------------
# The batched analysis plane promises *bit*-identity: every ``*_batch``
# kernel routes the scalar call through the same 2-D core with B == 1,
# and the batched primitives are batch-size invariant, so each row of a
# batch must equal the scalar call on that row byte for byte.

import pickle

from repro.core.changes import ChangeDetector
from repro.core.diurnal import DiurnalTest
from repro.core.pipeline import BlockPipeline
from repro.core.reconstruction import Reconstruction
from repro.core.sensitivity import SensitivityClassifier
from repro.core.stages import StageContext
from repro.core.swing import SwingTest
from repro.core.trend import TrendExtractor
from repro.timeseries.detect import detect_cusum_batch, zscore_rows
from repro.timeseries.loess import loess_smooth, loess_smooth_batch
from repro.timeseries.series import (
    SECONDS_PER_HOUR,
    BlockMatrix,
    TimeSeries,
    group_block_matrices,
)
from repro.timeseries.spectrum import (
    diurnal_energy_ratio,
    diurnal_energy_ratio_batch,
    periodogram,
    periodogram_batch,
)
from repro.timeseries.stl import (
    _moving_average,
    _moving_average_reference,
    stl_decompose,
    stl_decompose_batch,
)


def _count_rows(rng, n_rows, n, period=24):
    """Plausible diurnal count rows: level + daily cycle + noise + NaN gaps."""
    t = np.arange(n)
    rows = np.empty((n_rows, n))
    for i in range(n_rows):
        level = rng.uniform(5.0, 60.0)
        amp = rng.uniform(0.0, 0.5 * level)
        rows[i] = level + amp * np.sin(2 * np.pi * (t + rng.integers(period)) / period)
        rows[i] += rng.normal(0.0, 0.05 * level, n)
        if rng.random() < 0.5:  # reconstruction gaps
            gaps = rng.choice(n, size=int(rng.integers(1, max(n // 20, 2))), replace=False)
            rows[i, gaps] = np.nan
    return rows


class TestLoessBatchEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_rows_match_scalar(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(12, 300))
        x = np.arange(n, dtype=float) * float(rng.uniform(0.5, 4.0))
        values = rng.normal(0.0, 1.0, (int(rng.integers(1, 7)), n))
        q = int(rng.integers(3, n + 4))  # sometimes >= n: scalar fallback
        degree = int(rng.integers(0, 2))
        batch = loess_smooth_batch(x, values, q, degree=degree)
        for i, row in enumerate(values):
            np.testing.assert_array_equal(
                batch[i], loess_smooth(x, row, q, degree=degree)
            )

    def test_offset_xout_matches_scalar(self):
        """The cycle-subseries grid (xout = -1..m) uses the fast path."""
        rng = np.random.default_rng(1)
        m = 30
        x = np.arange(m, dtype=float)
        xout = np.arange(-1.0, m + 1.0)
        values = rng.normal(0.0, 1.0, (4, m))
        weights = rng.uniform(0.2, 1.0, (4, m))
        batch = loess_smooth_batch(x, values, 7, xout=xout, robustness_weights=weights)
        for i, row in enumerate(values):
            np.testing.assert_array_equal(
                batch[i],
                loess_smooth(x, row, 7, xout=xout, robustness_weights=weights[i]),
            )

    def test_single_row_is_scalar(self):
        rng = np.random.default_rng(2)
        x = np.arange(50, dtype=float)
        y = rng.normal(0.0, 1.0, 50)
        np.testing.assert_array_equal(
            loess_smooth_batch(x, y[None, :], 9)[0], loess_smooth(x, y, 9)
        )

    def test_nonuniform_grid_falls_back_per_row(self):
        rng = np.random.default_rng(3)
        x = np.sort(rng.uniform(0.0, 100.0, 40))
        values = rng.normal(0.0, 1.0, (3, 40))
        batch = loess_smooth_batch(x, values, 7)
        for i, row in enumerate(values):
            np.testing.assert_array_equal(batch[i], loess_smooth(x, row, 7))


class TestMovingAverageEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_cumsum_matches_convolve_oracle(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(30, 3000))
        window = int(rng.integers(2, min(n, 200)))
        x = rng.normal(50.0, 10.0, n)
        np.testing.assert_allclose(
            _moving_average(x, window),
            _moving_average_reference(x, window),
            rtol=1e-12,
            atol=1e-9,
        )

    def test_batched_rows_match_rowwise(self):
        rng = np.random.default_rng(9)
        x = rng.normal(0.0, 1.0, (5, 400))
        batch = _moving_average(x, 25)
        for i, row in enumerate(x):
            np.testing.assert_array_equal(batch[i], _moving_average(row, 25))


class TestStlBatchEquivalence:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {},
            {"outer_iterations": 0},
            {"outer_iterations": 3},
            {"seasonal_smoother": 11},
            {"seasonal_smoother": 11, "outer_iterations": 2},
        ],
    )
    def test_rows_match_scalar(self, kwargs):
        rng = np.random.default_rng(4)
        n = 24 * 21
        t = np.arange(n)
        values = np.stack(
            [
                10 + a * np.sin(2 * np.pi * t / 24) + rng.normal(0, 0.4, n)
                for a in (0.5, 3.0, 8.0)
            ]
        )
        batch = stl_decompose_batch(values, 24, **kwargs)
        for i, row in enumerate(values):
            ref = stl_decompose(row, 24, **kwargs)
            np.testing.assert_array_equal(batch.trend[i], ref.trend)
            np.testing.assert_array_equal(batch.seasonal[i], ref.seasonal)
            np.testing.assert_array_equal(batch.residual[i], ref.residual)

    def test_batch_width_invariance(self):
        """Bit-identity must not depend on how many rows share the batch."""
        rng = np.random.default_rng(5)
        n = 24 * 14
        values = rng.normal(20.0, 2.0, (6, n)) + np.sin(
            2 * np.pi * np.arange(n) / 24
        )
        wide = stl_decompose_batch(values, 24)
        narrow = stl_decompose_batch(values[2:4], 24)
        np.testing.assert_array_equal(wide.trend[2:4], narrow.trend)

    def test_empty_batch(self):
        out = stl_decompose_batch(np.empty((0, 24 * 3)), 24)
        assert out.trend.shape == (0, 24 * 3)


class TestPeriodogramBatchEquivalence:
    def test_rows_match_scalar_including_dead_rows(self):
        rng = np.random.default_rng(6)
        n = 24 * 10
        values = _count_rows(rng, 5, n)
        values[2] = np.nan  # dead row
        values[3] = 7.0  # constant row
        batch = periodogram_batch(values, SECONDS_PER_HOUR)
        for i, row in enumerate(values):
            ref = periodogram(row, SECONDS_PER_HOUR)
            np.testing.assert_array_equal(batch[i].frequencies, ref.frequencies)
            np.testing.assert_array_equal(batch[i].power, ref.power)

    def test_single_row(self):
        rng = np.random.default_rng(7)
        row = _count_rows(rng, 1, 24 * 5)
        batch = periodogram_batch(row, SECONDS_PER_HOUR)
        ref = periodogram(row[0], SECONDS_PER_HOUR)
        np.testing.assert_array_equal(batch[0].power, ref.power)

    def test_diurnal_ratio_rows_match_scalar(self):
        rng = np.random.default_rng(8)
        values = _count_rows(rng, 4, 24 * 12)
        batch = diurnal_energy_ratio_batch(values, SECONDS_PER_HOUR)
        for i, row in enumerate(values):
            assert batch[i] == diurnal_energy_ratio(row, SECONDS_PER_HOUR)


class TestCusumBatchEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_rows_match_scalar(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(50, 1200))
        values = np.cumsum(rng.normal(0.0, 0.4, (4, n)), axis=1)
        values[1, :7] = np.nan  # leading NaNs
        values[2, n // 2 : n // 2 + 9] = np.nan  # interior gap
        values[3] = np.nan  # all-NaN row
        batch = detect_cusum_batch(values, 1.0, 0.0055)
        for i, row in enumerate(values):
            ref = detect_cusum(row, 1.0, 0.0055)
            assert batch[i].alarms == ref.alarms
            np.testing.assert_array_equal(batch[i].gp, ref.gp)
            np.testing.assert_array_equal(batch[i].gn, ref.gn)


class TestZscoreRowsEquivalence:
    def test_matches_trendresult_normalize(self):
        rng = np.random.default_rng(11)
        n = 24 * 14
        times = np.arange(n) * SECONDS_PER_HOUR
        values = _count_rows(rng, 5, n)
        values = np.where(np.isnan(values), 0.0, values)  # trends are finite
        batch = zscore_rows(values, min_abs_scale=0.5, min_rel_scale=0.02)
        from repro.core.trend import TrendResult

        for i, row in enumerate(values):
            series = TimeSeries(times, row)
            result = TrendResult(
                hourly=series,
                trend=series,
                seasonal=series,
                residual=series,
                period=24,
                method="stl",
            )
            np.testing.assert_array_equal(batch[i], result.normalize().values)

    def test_nan_rows_pass_through(self):
        values = np.array([[np.nan, np.nan, np.nan], [1.0, 2.0, 3.0]])
        out = zscore_rows(values)
        np.testing.assert_array_equal(out[0], values[0])


class TestBlockMatrixEquivalence:
    def _series(self, rng, n, step=660.0, t0=0.0):
        times = t0 + np.arange(n) * step
        return TimeSeries(times, _count_rows(rng, 1, n)[0])

    def test_resample_interpolate_swings_match_rowwise(self):
        rng = np.random.default_rng(12)
        n = 131 * 24  # ~1.5 days of 11-minute rounds
        series = [self._series(rng, n) for _ in range(5)]
        matrix = BlockMatrix.from_series(series)
        hourly = matrix.resample_mean(SECONDS_PER_HOUR).interpolate_nan()
        for i, s in enumerate(series):
            ref = s.resample_mean(SECONDS_PER_HOUR).interpolate_nan()
            np.testing.assert_array_equal(hourly.times, ref.times)
            np.testing.assert_array_equal(hourly.values[i], ref.values)
        day_idx, swings = matrix.daily_swings()
        for i, s in enumerate(series):
            ref_days, ref_swings = s.daily_swing()
            present = ~np.isnan(swings[i])
            np.testing.assert_array_equal(day_idx[present], ref_days)
            np.testing.assert_array_equal(swings[i][present], ref_swings)

    def test_group_block_matrices_partitions_by_grid(self):
        rng = np.random.default_rng(13)
        a = [self._series(rng, 100) for _ in range(3)]
        b = [self._series(rng, 80, t0=660.0) for _ in range(2)]
        ragged = [a[0], b[0], a[1], b[1], a[2]]
        groups = group_block_matrices(ragged)
        assert [idx for idx, _ in groups] == [(0, 2, 4), (1, 3)]
        for indices, matrix in groups:
            for pos, i in enumerate(indices):
                np.testing.assert_array_equal(matrix.values[pos], ragged[i].values)


class TestVerdictBatchEquivalence:
    """The classifier's two verdict kernels, each against its scalar twin."""

    def _series(self, rng, n, step=660.0):
        times = np.arange(n) * step
        return TimeSeries(times, _count_rows(rng, 1, n)[0])

    def test_diurnal_evaluate_batch_matches_scalar(self):
        rng = np.random.default_rng(16)
        long_n = 131 * 24 * 7
        short_n = 131 * 24 * 2  # below min_days: the unjudgeable early-out
        series = [self._series(rng, long_n) for _ in range(4)]
        series.append(self._series(rng, short_n))
        diurnal = DiurnalTest()
        for group in (series[:4], series[4:]):
            batch = diurnal.evaluate_batch(BlockMatrix.from_series(group))
            for verdict, s in zip(batch, group):
                assert pickle.dumps(verdict) == pickle.dumps(diurnal.evaluate(s))

    def test_swing_evaluate_batch_matches_scalar(self):
        rng = np.random.default_rng(17)
        n = 131 * 24 * 7
        series = [self._series(rng, n) for _ in range(5)]
        swing = SwingTest()
        batch = swing.evaluate_batch(BlockMatrix.from_series(series))
        for profile, s in zip(batch, series):
            assert pickle.dumps(profile) == pickle.dumps(swing.evaluate(s))


class TestAnalysisTailBatchEquivalence:
    def _recon(self, rng, n):
        series = TimeSeries(np.arange(n) * 660.0, _count_rows(rng, 1, n)[0])
        return Reconstruction(
            counts=series,
            complete_time_s=660.0,
            eb_size=64,
            observed_addresses=np.arange(64, dtype=np.int16),
        )

    def test_classify_trend_detect_batch_match_scalar(self):
        rng = np.random.default_rng(14)
        n = 131 * 24 * 14  # two weeks of 11-minute rounds
        recons = [self._recon(rng, n) for _ in range(4)]
        matrix = BlockMatrix.from_series([r.counts for r in recons])

        classifier = SensitivityClassifier()
        batch_cls = classifier.classify_batch(matrix)
        for i, r in enumerate(recons):
            assert pickle.dumps(batch_cls[i]) == pickle.dumps(
                classifier.classify(r.counts)
            )

        extractor = TrendExtractor()
        batch_trends = extractor.extract_batch(matrix)
        detector = ChangeDetector()
        live = [i for i, t in enumerate(batch_trends) if t is not None]
        assert live  # the synthetic rows are long enough to decompose
        for i in live:
            ref = extractor.extract(recons[i].counts)
            assert pickle.dumps(batch_trends[i]) == pickle.dumps(ref)
            batch_report = detector.detect_batch(
                BlockMatrix(
                    batch_trends[i].trend.times,
                    zscore_rows(batch_trends[i].trend.values[None, :],
                                min_abs_scale=0.5, min_rel_scale=0.02),
                )
            )[0]
            assert pickle.dumps(batch_report) == pickle.dumps(
                detector.detect(ref.normalized_trend)
            )

    def test_analyze_tail_batch_matches_per_block_over_ragged_grids(self):
        rng = np.random.default_rng(15)
        long_n = 131 * 24 * 14
        short_n = 131 * 24 * 7
        recons = [
            self._recon(rng, long_n),
            self._recon(rng, short_n),
            self._recon(rng, long_n),
            self._recon(rng, short_n),
            self._recon(rng, long_n),
        ]
        pipeline = BlockPipeline(detect_on_all=True)
        batch_ctxs = [StageContext() for _ in recons]
        batch = pipeline.analyze_tail_batch(recons, batch_ctxs)
        for i, recon in enumerate(recons):
            ctx = StageContext()
            ref = pipeline.analyze_tail(recon, ctx)
            assert pickle.dumps(batch[i]) == pickle.dumps(ref), f"block {i}"
            # same stage names, sizes, and skip reasons (wall times differ)
            assert [
                (r.name, r.n_in, r.n_out, r.skipped) for r in batch_ctxs[i].records
            ] == [(r.name, r.n_in, r.n_out, r.skipped) for r in ctx.records]
