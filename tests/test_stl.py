"""Unit tests for the STL decomposition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.timeseries.stl import stl_decompose


def diurnal_series(n_days=21, amplitude=5.0, level=12.0, noise=0.3, seed=0):
    rng = np.random.default_rng(seed)
    n = 24 * n_days
    t = np.arange(n)
    seasonal = amplitude * np.sin(2 * np.pi * t / 24.0)
    return level + seasonal + rng.normal(0, noise, n), seasonal


class TestDecomposition:
    def test_components_sum_to_input(self):
        y, _ = diurnal_series()
        res = stl_decompose(y, 24)
        assert np.allclose(res.trend + res.seasonal + res.residual, y, atol=1e-9)

    def test_recovers_flat_trend(self):
        y, _ = diurnal_series(level=12.0)
        res = stl_decompose(y, 24)
        assert np.abs(res.trend - 12.0).max() < 0.8

    def test_recovers_seasonal_shape(self):
        y, seasonal = diurnal_series(noise=0.1)
        res = stl_decompose(y, 24)
        inner = slice(48, -48)
        assert np.corrcoef(res.seasonal[inner], seasonal[inner])[0, 1] > 0.99

    def test_tracks_step_change(self):
        y, _ = diurnal_series(n_days=28)
        y[24 * 14 :] -= 6.0
        res = stl_decompose(y, 24)
        assert res.trend[: 24 * 10].mean() - res.trend[24 * 18 :].mean() > 4.0

    def test_periodic_seasonal_is_strictly_periodic(self):
        y, _ = diurnal_series()
        res = stl_decompose(y, 24, seasonal_smoother=None)
        week1 = res.seasonal[:24]
        week2 = res.seasonal[24:48]
        assert np.allclose(week1, week2, atol=1e-9)

    def test_robustness_downweights_outliers(self):
        y, _ = diurnal_series(noise=0.1)
        y[100] += 80.0
        res = stl_decompose(y, 24, outer_iterations=2)
        assert res.robustness_weights[100] < 0.1
        # the outlier lands in the residual, not the trend
        assert abs(res.trend[100] - 12.0) < 1.5

    def test_weekly_period_supported(self):
        rng = np.random.default_rng(3)
        n = 168 * 4
        t = np.arange(n)
        y = 10 + 3 * np.sin(2 * np.pi * t / 168) + rng.normal(0, 0.2, n)
        res = stl_decompose(y, 168, seasonal_smoother=None)
        assert np.abs(res.trend - 10).max() < 1.0


class TestValidation:
    def test_rejects_nan(self):
        y = np.ones(100)
        y[5] = np.nan
        with pytest.raises(ValueError, match="finite"):
            stl_decompose(y, 24)

    def test_rejects_short_series(self):
        with pytest.raises(ValueError, match="two periods"):
            stl_decompose(np.ones(30), 24)

    def test_rejects_tiny_period(self):
        with pytest.raises(ValueError, match="period"):
            stl_decompose(np.ones(100), 1)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            stl_decompose(np.ones((10, 10)), 2)

    def test_rejects_bad_seasonal_smoother(self):
        with pytest.raises(ValueError, match="seasonal_smoother"):
            stl_decompose(np.ones(100), 24, seasonal_smoother=1)
