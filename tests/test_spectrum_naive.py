"""Unit tests for the periodogram helpers and naive decomposition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.timeseries.naive import naive_decompose
from repro.timeseries.series import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.timeseries.spectrum import diurnal_energy_ratio, periodogram


class TestPeriodogram:
    def test_pure_diurnal_sine_concentrates_power(self):
        n = 24 * 14
        t = np.arange(n) * 3600.0
        y = np.sin(2 * np.pi * t / SECONDS_PER_DAY)
        pg = periodogram(y, SECONDS_PER_HOUR)
        diurnal = pg.power_near(1.0 / SECONDS_PER_DAY)
        assert diurnal / pg.total_power > 0.99

    def test_dc_excluded_from_total(self):
        y = np.full(100, 5.0)
        pg = periodogram(y, SECONDS_PER_HOUR)
        assert pg.total_power == pytest.approx(0.0, abs=1e-12)

    def test_nan_handling(self):
        n = 24 * 7
        y = np.sin(2 * np.pi * np.arange(n) / 24.0)
        y[10:14] = np.nan
        pg = periodogram(y, SECONDS_PER_HOUR)
        assert np.isfinite(pg.total_power)

    def test_power_near_out_of_range_frequency(self):
        pg = periodogram(np.sin(np.arange(48.0)), SECONDS_PER_HOUR)
        assert pg.power_near(1.0) == 0.0  # 1 Hz is far beyond Nyquist here


class TestDiurnalRatio:
    def test_diurnal_signal_scores_high(self):
        n = 24 * 14
        t = np.arange(n) * 3600.0
        y = 3 + np.sin(2 * np.pi * t / SECONDS_PER_DAY)
        assert diurnal_energy_ratio(y, SECONDS_PER_HOUR) > 0.9

    def test_square_wave_harmonics_counted(self):
        n = 24 * 14
        hours = np.arange(n) % 24
        y = (hours < 10).astype(float) * 8
        assert diurnal_energy_ratio(y, SECONDS_PER_HOUR, harmonics=4) > 0.8

    def test_white_noise_scores_low(self):
        rng = np.random.default_rng(0)
        y = rng.normal(0, 1, 24 * 28)
        assert diurnal_energy_ratio(y, SECONDS_PER_HOUR) < 0.3

    def test_flat_series_scores_zero(self):
        assert diurnal_energy_ratio(np.full(200, 3.0), SECONDS_PER_HOUR) == 0.0


class TestNaiveDecomposition:
    def test_components_sum(self):
        rng = np.random.default_rng(1)
        y = 10 + 3 * np.sin(2 * np.pi * np.arange(24 * 10) / 24) + rng.normal(0, 0.2, 240)
        res = naive_decompose(y, 24)
        assert np.allclose(res.trend + res.seasonal + res.residual, y, atol=1e-9)

    def test_seasonal_is_zero_mean(self):
        y = 5 + np.sin(2 * np.pi * np.arange(24 * 10) / 24)
        res = naive_decompose(y, 24)
        assert res.seasonal[:24].mean() == pytest.approx(0.0, abs=1e-9)

    def test_seasonal_is_periodic(self):
        y = 5 + np.sin(2 * np.pi * np.arange(24 * 10) / 24)
        res = naive_decompose(y, 24)
        assert np.allclose(res.seasonal[:24], res.seasonal[24:48])

    def test_odd_period(self):
        y = np.tile(np.arange(7.0), 10)
        res = naive_decompose(y, 7)
        assert np.allclose(res.trend, 3.0, atol=0.5)

    def test_rejects_short_input(self):
        with pytest.raises(ValueError):
            naive_decompose(np.ones(20), 24)

    def test_rejects_nan(self):
        y = np.ones(100)
        y[3] = np.nan
        with pytest.raises(ValueError, match="finite"):
            naive_decompose(y, 10)
