"""Unit tests for address primitives and the geolocation substrate."""

from __future__ import annotations

import pytest

from repro.net.addresses import BLOCK_SIZE, BlockAddress, format_ipv4, parse_ipv4
from repro.net.geo import WORLD_CITIES, GeoInfo, GridCell, city_by_name, gridcell_of


class TestIpv4Formatting:
    def test_roundtrip(self):
        for text in ("0.0.0.0", "128.9.144.0", "255.255.255.255", "10.1.2.3"):
            assert format_ipv4(parse_ipv4(text)) == text

    def test_parse_rejects_garbage(self):
        for bad in ("1.2.3", "1.2.3.4.5", "300.1.1.1", "a.b.c.d"):
            with pytest.raises(ValueError):
                parse_ipv4(bad)

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            format_ipv4(1 << 32)


class TestBlockAddress:
    def test_from_cidr(self):
        blk = BlockAddress.from_cidr("128.9.144.0/24")
        assert blk.cidr == "128.9.144.0/24"
        assert str(blk) == "128.9.144.0/24"

    def test_cidr_suffix_optional(self):
        assert BlockAddress.from_cidr("10.0.1.0") == BlockAddress.from_cidr("10.0.1.0/24")

    def test_rejects_non_24(self):
        with pytest.raises(ValueError, match="/24"):
            BlockAddress.from_cidr("10.0.0.0/16")

    def test_rejects_nonzero_last_octet(self):
        with pytest.raises(ValueError, match=r"\.0"):
            BlockAddress.from_cidr("10.0.0.5/24")

    def test_address_formatting(self):
        blk = BlockAddress.from_cidr("128.9.144.0/24")
        assert blk.address(17) == "128.9.144.17"
        with pytest.raises(ValueError):
            blk.address(BLOCK_SIZE)

    def test_index_roundtrip(self):
        blk = BlockAddress.from_index(12345)
        assert blk.index == 12345

    def test_ordering(self):
        assert BlockAddress.from_index(1) < BlockAddress.from_index(2)


class TestGridCells:
    def test_gridcell_floors_to_even_degrees(self):
        assert gridcell_of(30.6, 114.3) == GridCell(30, 114)
        assert gridcell_of(39.9, 116.4) == GridCell(38, 116)
        assert gridcell_of(-23.55, -46.6) == GridCell(-24, -48)

    def test_paper_cells_match(self):
        # the paper's named gridcells should match our city catalogue
        assert city_by_name("Wuhan").gridcell == GridCell(30, 114)
        assert city_by_name("New Delhi").gridcell == GridCell(28, 76)
        assert city_by_name("Abu Dhabi").gridcell == GridCell(24, 54)
        assert city_by_name("Ljubljana").gridcell == GridCell(46, 14)

    def test_contains(self):
        cell = GridCell(30, 114)
        assert cell.contains(30.0, 114.0)
        assert cell.contains(31.99, 115.99)
        assert not cell.contains(32.0, 114.0)

    def test_str_hemispheres(self):
        assert str(GridCell(30, 114)) == "(30N, 114E)"
        assert str(GridCell(-24, -48)) == "(24S, 48W)"

    def test_geoinfo_gridcell(self):
        info = GeoInfo(lat=30.5, lon=114.2, country="China", continent="Asia", city="Wuhan")
        assert info.gridcell == GridCell(30, 114)


class TestCatalogue:
    def test_city_lookup(self):
        assert city_by_name("Tokyo").continent == "Asia"
        with pytest.raises(KeyError):
            city_by_name("Atlantis")

    def test_all_weights_positive(self):
        assert all(c.weight > 0 for c in WORLD_CITIES)

    def test_all_continents_covered(self):
        continents = {c.continent for c in WORLD_CITIES}
        assert continents >= {
            "Asia",
            "Europe",
            "North America",
            "South America",
            "Africa",
            "Oceania",
        }

    def test_timezones_plausible(self):
        assert all(-12 <= c.tz_hours <= 14 for c in WORLD_CITIES)
