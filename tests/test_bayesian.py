"""Tests for the full Bayesian Trinocular observer.

Validates the paper's simplification: the stop-at-first-positive prober
(`TrinocularObserver`) and the belief-driven original produce probe
streams whose reconstructions agree closely.
"""

from __future__ import annotations

from datetime import datetime

import numpy as np
import pytest

from repro.core.reconstruction import reconstruct
from repro.net.bayesian import BayesianTrinocularObserver
from repro.net.events import Calendar
from repro.net.prober import TrinocularObserver, probe_order
from repro.net.usage import ServerFarmUsage, WorkplaceUsage, round_grid

EPOCH = datetime(2020, 1, 1)


def make_truth(usage, days=7, seed=0):
    cal = Calendar(epoch=EPOCH, tz_hours=0.0)
    return usage.generate(np.random.default_rng(seed), round_grid(days * 86_400.0), cal)


class TestBayesianObserver:
    def test_one_probe_per_round_when_clearly_up(self):
        truth = make_truth(ServerFarmUsage(n_servers=64, maintenance_rate_per_day=0.0), days=1)
        order = probe_order(truth.n_addresses, 1)
        log = BayesianTrinocularObserver("e").observe(truth, order)
        per_round = np.bincount((log.times // 660.0).astype(int))
        # once confident, a single positive reply ends the round
        assert np.median(per_round) == 1

    def test_probes_more_when_uncertain(self):
        truth = make_truth(WorkplaceUsage(n_desktops=20, n_servers=0, stale_addresses=20), days=3)
        order = probe_order(truth.n_addresses, 2)
        log = BayesianTrinocularObserver("e").observe(truth, order)
        per_round = np.bincount((log.times // 660.0).astype(int))
        assert per_round.max() > 1  # nighttime rounds need several probes

    def test_caps_at_round_budget(self):
        truth = make_truth(WorkplaceUsage(n_desktops=30, n_servers=0), days=2)
        truth.active[:] = False
        order = probe_order(truth.n_addresses, 3)
        log = BayesianTrinocularObserver("e", max_probes_per_round=15).observe(truth, order)
        per_round = np.bincount((log.times // 660.0).astype(int))
        assert per_round.max() <= 15

    def test_results_match_truth(self):
        truth = make_truth(WorkplaceUsage(n_desktops=20, n_servers=1), days=2)
        order = probe_order(truth.n_addresses, 4)
        log = BayesianTrinocularObserver("e").observe(truth, order)
        rows = {int(a): i for i, a in enumerate(truth.addresses)}
        for k in range(0, len(log), 71):
            row = rows[int(log.addresses[k])]
            col = truth.column_of(float(log.times[k]))
            assert bool(log.results[k]) == bool(truth.active[row, col])

    def test_rejects_wrong_order(self):
        truth = make_truth(ServerFarmUsage(n_servers=8), days=1)
        with pytest.raises(ValueError, match="permute"):
            BayesianTrinocularObserver("e").observe(truth, np.arange(3))


class TestSimplificationValidity:
    """The paper's stop-at-first-positive is a faithful simplification."""

    @pytest.mark.parametrize("seed", [10, 11])
    def test_reconstructions_agree(self, seed):
        truth = make_truth(WorkplaceUsage(n_desktops=40, n_servers=2), days=7, seed=seed)
        order = probe_order(truth.n_addresses, seed)
        simple = TrinocularObserver("e").observe(
            truth, order, rng=np.random.default_rng(seed)
        )
        bayes = BayesianTrinocularObserver("e").observe(
            truth, order, rng=np.random.default_rng(seed)
        )
        rec_simple = reconstruct(simple, truth.addresses, truth.col_times)
        rec_bayes = reconstruct(bayes, truth.addresses, truth.col_times)
        r = rec_simple.counts.pearson(rec_bayes.counts)
        assert r > 0.95

    def test_probe_budgets_comparable(self):
        truth = make_truth(WorkplaceUsage(n_desktops=40, n_servers=2), days=7, seed=12)
        order = probe_order(truth.n_addresses, 12)
        simple = TrinocularObserver("e").observe(truth, order)
        bayes = BayesianTrinocularObserver("e").observe(truth, order)
        # belief-driven probing is cheaper: confidently-down rounds stop
        # after a couple of probes instead of sweeping 15
        assert len(bayes) < len(simple)
        assert len(simple) < 6.0 * len(bayes)
