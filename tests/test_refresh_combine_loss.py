"""Unit tests for refresh modelling, observer comparison, and loss models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.combine import compare_observers, flag_outlier_observers
from repro.core.refresh import (
    FbsLogisticModel,
    estimate_fbs_hours,
    probes_per_round_for_target,
    select_for_additional_probing,
)
from repro.net.loss import BernoulliLoss, DiurnalCongestionLoss, NoLoss
from repro.net.observations import ObservationSeries


class TestFbsEstimate:
    def test_dense_block_is_slow(self):
        # 256 always-responding addresses: one probe per round -> 256 rounds
        hours = estimate_fbs_hours(256, 1.0)
        assert hours == pytest.approx(256 * 660 / 3600, rel=0.01)

    def test_sparse_block_is_fast(self):
        # nothing responds: 15 probes per round
        hours = estimate_fbs_hours(256, 1e-6)
        assert hours == pytest.approx(256 / 15 * 660 / 3600, rel=0.05)

    def test_monotone_in_availability(self):
        a = np.linspace(0.01, 0.99, 20)
        hours = estimate_fbs_hours(np.full(20, 128), a)
        assert np.all(np.diff(hours) >= -1e-9)

    def test_monotone_in_size(self):
        sizes = np.arange(16, 257, 16)
        hours = estimate_fbs_hours(sizes, np.full(sizes.size, 0.5))
        assert np.all(np.diff(hours) > 0)


class TestLogisticModel:
    def _training_data(self, n=400, seed=0):
        rng = np.random.default_rng(seed)
        eb = rng.integers(8, 257, n)
        a = rng.uniform(0.0, 1.0, n)
        fbs = estimate_fbs_hours(eb, a) * rng.lognormal(0, 0.15, n)
        return eb.astype(float), a, fbs

    def test_fits_and_predicts(self):
        eb, a, fbs = self._training_data()
        model = FbsLogisticModel().fit(eb, a, fbs)
        predicted = model.predict(eb, a)
        truth = fbs > 6.0
        assert (predicted == truth).mean() > 0.85

    def test_false_negative_rate_low(self):
        eb, a, fbs = self._training_data()
        model = FbsLogisticModel().fit(eb, a, fbs)
        assert model.false_negative_rate(eb, a, fbs) < 0.1

    def test_probability_monotone_in_availability(self):
        eb, a, fbs = self._training_data()
        model = FbsLogisticModel().fit(eb, a, fbs)
        probs = model.predict_probability(np.full(10, 200.0), np.linspace(0, 1, 10))
        assert probs[-1] > probs[0]

    def test_unfitted_model_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            FbsLogisticModel().predict(np.array([100.0]), np.array([0.5]))

    def test_degenerate_labels(self):
        model = FbsLogisticModel().fit(
            np.array([10.0, 20.0]), np.array([0.1, 0.2]), np.array([1.0, 2.0])
        )
        assert not model.predict(np.array([100.0]), np.array([0.9]))[0]


class TestSelection:
    def test_origin_blocks_skipped(self):
        eb, a, fbs = np.array([16.0, 200.0]), np.array([0.9, 0.01]), None
        model = FbsLogisticModel()
        model.coefficients = np.array([50.0, 0.0, 0.0])  # predicts "slow" always
        selected = select_for_additional_probing(eb, a, model)
        assert not selected[0]  # |E(b)| < 32
        assert not selected[1]  # A < 0.05

    def test_eligible_slow_blocks_selected(self):
        model = FbsLogisticModel()
        model.coefficients = np.array([50.0, 0.0, 0.0])
        selected = select_for_additional_probing(
            np.array([200.0]), np.array([0.9]), model
        )
        assert selected[0]


class TestProbeBudget:
    def test_full_block_needs_eight(self):
        assert probes_per_round_for_target(256) == 8

    def test_small_block_needs_one(self):
        assert probes_per_round_for_target(20) == 1

    def test_budget_meets_target(self):
        for eb in (32, 64, 100, 200, 256):
            n = probes_per_round_for_target(eb, target_hours=6.0)
            rounds = np.ceil(eb / n)
            assert rounds * 660.0 <= 6.05 * 3600.0 or n == 8


class TestObserverComparison:
    def _series(self, observer, rate, n=200, seed=0):
        rng = np.random.default_rng(seed)
        return ObservationSeries(
            times=np.arange(n, dtype=float),
            addresses=np.zeros(n, dtype=np.int16),
            results=rng.random(n) < rate,
            observer=observer,
        )

    def test_deviation_from_median(self):
        series = [
            self._series("e", 0.6, seed=1),
            self._series("j", 0.6, seed=2),
            self._series("w", 0.3, seed=3),
        ]
        health = compare_observers(series)
        by_name = {h.observer: h for h in health}
        assert by_name["w"].suspicious
        assert not by_name["e"].suspicious

    def test_flag_outlier_across_blocks(self):
        per_block = []
        for blk in range(6):
            per_block.append(
                compare_observers(
                    [
                        self._series("e", 0.6, seed=10 + blk),
                        self._series("j", 0.6, seed=20 + blk),
                        self._series("c", 0.2, seed=30 + blk),
                    ]
                )
            )
        assert flag_outlier_observers(per_block) == {"c"}

    def test_no_flags_when_healthy(self):
        per_block = [
            compare_observers(
                [self._series("e", 0.6, seed=k), self._series("j", 0.6, seed=50 + k)]
            )
            for k in range(6)
        ]
        assert flag_outlier_observers(per_block) == set()


class TestLossModels:
    def test_no_loss(self):
        assert NoLoss().loss_probability(np.arange(5)).max() == 0.0
        assert NoLoss().max_probability() == 0.0

    def test_bernoulli_constant(self):
        model = BernoulliLoss(0.1)
        assert np.all(model.loss_probability(np.arange(10)) == 0.1)

    def test_bernoulli_validation(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.5)

    def test_diurnal_peaks_at_peak_hour(self):
        model = DiurnalCongestionLoss(base=0.01, peak=0.4, peak_hour=21.0, tz_hours=0.0)
        t_peak = 21 * 3600.0
        t_off = 9 * 3600.0
        assert model.loss_probability(np.array([t_peak]))[0] == pytest.approx(0.4)
        assert model.loss_probability(np.array([t_off]))[0] == pytest.approx(0.01)

    def test_diurnal_respects_timezone(self):
        model = DiurnalCongestionLoss(peak_hour=21.0, tz_hours=8.0)
        # local 21:00 at UTC+8 is 13:00 UTC
        utc_13 = 13 * 3600.0
        assert model.loss_probability(np.array([utc_13]))[0] == pytest.approx(
            model.peak
        )

    def test_diurnal_validation(self):
        with pytest.raises(ValueError):
            DiurnalCongestionLoss(base=0.5, peak=0.1)
