"""Shared fixtures: small deterministic worlds and canonical series.

Also wires the opt-in runtime ResourceSanitizer into the suite: run
``REPRO_SANITIZE=1 pytest`` and every shm segment, process pool, and
spill directory acquired during the session is tracked, with the
session failing if anything is still live at the end (the CI
sanitize-smoke job runs tier-1 exactly this way).
"""

from __future__ import annotations

import gc
import sys
from datetime import date, datetime

import numpy as np
import pytest

from repro.net.events import Calendar, Holiday, WorkFromHome
from repro.net.prober import TrinocularObserver, probe_order
from repro.net.usage import WorkplaceUsage, round_grid
from repro.net.world import WorldModel, scenario_covid2020
from repro.timeseries.series import TimeSeries

#: pytest exit status used when the sanitizer finds leaked resources.
SANITIZER_EXIT = 3


def pytest_configure(config: pytest.Config) -> None:
    from repro.lint import sanitizer

    sanitizer.install_if_enabled()


def pytest_sessionfinish(session: pytest.Session, exitstatus: int) -> None:
    from repro.lint import sanitizer

    san = sanitizer.get_sanitizer()
    if not san.installed:
        return
    gc.collect()  # let finalizer safety nets fire before judging
    leaks = san.live()
    if leaks:
        print(f"\n{san.report()}", file=sys.stderr, flush=True)
        session.exitstatus = SANITIZER_EXIT
    # the registry is clean (or reported); keep atexit from re-firing
    san.uninstall()


@pytest.fixture(scope="session")
def small_world() -> WorldModel:
    """A 60-block Covid-2020 world shared across tests."""
    return WorldModel(scenario_covid2020(), n_blocks=60, seed=3)


@pytest.fixture(scope="session")
def workplace_block():
    """A two-week workplace block with truth, order and one observer log."""
    calendar = Calendar(
        epoch=datetime(2020, 1, 1),
        tz_hours=0.0,
        events=(Holiday(first=date(2020, 1, 6), name="test holiday"),),
    )
    usage = WorkplaceUsage(n_desktops=30, n_servers=2, stale_addresses=4)
    rng = np.random.default_rng(99)
    truth = usage.generate(rng, round_grid(14 * 86_400.0), calendar)
    order = probe_order(truth.n_addresses, 99)
    log = TrinocularObserver("e", phase_offset_s=100.0).observe(
        truth, order, rng=np.random.default_rng(7)
    )
    return calendar, truth, order, log


@pytest.fixture()
def hourly_step_series() -> tuple[TimeSeries, int]:
    """Four weeks of hourly data with a step drop halfway; returns (ts, step_idx)."""
    rng = np.random.default_rng(5)
    n = 24 * 28
    t = np.arange(n) * 3600.0
    step = n // 2
    values = (
        np.where(np.arange(n) < step, 15.0, 9.0)
        + 4.0 * np.sin(2 * np.pi * t / 86_400.0)
        + rng.normal(0, 0.4, n)
    )
    return TimeSeries(t, values), step
