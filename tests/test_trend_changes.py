"""Unit tests for trend extraction and CUSUM change classification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.changes import ChangeDetector
from repro.core.trend import TrendExtractor
from repro.timeseries.series import SECONDS_PER_DAY, TimeSeries


def step_counts(n_days=42, drop_day=28, high=20.0, low=4.0, seed=0):
    """Hourly diurnal counts with the diurnal pattern vanishing at drop_day."""
    rng = np.random.default_rng(seed)
    t = np.arange(24 * n_days)
    day = t // 24
    wave = np.maximum(np.sin(2 * np.pi * (t % 24) / 24.0), 0.0)
    values = np.where(day < drop_day, 2 + high * wave, 2 + low * wave)
    values = values + rng.normal(0, 0.3, values.size)
    return TimeSeries(t * 3600.0, values)


class TestTrendExtractor:
    def test_stl_components_reconstruct_input(self):
        ts = step_counts()
        result = TrendExtractor(period=24).extract(ts)
        total = result.trend.values + result.seasonal.values + result.residual.values
        assert np.allclose(total, result.hourly.values, atol=1e-9)

    def test_trend_captures_step(self):
        result = TrendExtractor(period=24).extract(step_counts())
        early = result.trend.values[24 * 5 : 24 * 20].mean()
        late = result.trend.values[24 * 34 :].mean()
        assert early - late > 3.0

    def test_naive_method(self):
        result = TrendExtractor(method="naive", period=24).extract(step_counts())
        assert result.method == "naive"
        early = result.trend.values[24 * 5 : 24 * 20].mean()
        late = result.trend.values[24 * 34 :].mean()
        assert early - late > 3.0

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            TrendExtractor(method="prophet").extract(step_counts())

    def test_short_series_rejected(self):
        ts = TimeSeries(np.arange(24) * 3600.0, np.ones(24))
        with pytest.raises(ValueError, match="hourly samples"):
            TrendExtractor(period=24).extract(ts)

    def test_nan_edges_held_flat(self):
        ts = step_counts()
        values = ts.values.copy()
        values[:30] = np.nan
        values[-10:] = np.nan
        result = TrendExtractor(period=24).extract(ts.with_values(values))
        assert np.isfinite(result.trend.values).all()

    def test_all_nan_rejected(self):
        ts = TimeSeries(np.arange(24 * 14) * 3600.0, np.full(24 * 14, np.nan))
        with pytest.raises(ValueError, match="all-NaN"):
            TrendExtractor(period=24).extract(ts)

    def test_normalized_trend_is_zscored(self):
        result = TrendExtractor(period=24).extract(step_counts())
        z = result.normalized_trend.values
        assert abs(z.mean()) < 1e-9
        assert z.std() == pytest.approx(1.0, rel=0.05)

    def test_normalization_scale_floor_quiets_flat_trends(self):
        rng = np.random.default_rng(3)
        flat = TimeSeries(
            np.arange(24 * 42) * 3600.0, 10.0 + rng.normal(0, 0.2, 24 * 42)
        )
        z = TrendExtractor(period=24).extract(flat).normalized_trend
        # the trend wobble is far below one address: it must not reach
        # the CUSUM threshold after scale flooring
        assert np.abs(z.values).max() < 0.5


class TestChangeDetector:
    def _detect(self, ts, **kwargs):
        trend = TrendExtractor(period=24).extract(ts).normalized_trend
        return ChangeDetector(**kwargs).detect(trend)

    def test_detects_wfh_style_drop(self):
        report = self._detect(step_counts())
        down = [e for e in report.human_candidates if e.is_downward]
        assert down
        assert any(abs(e.day - 28) <= 4 for e in down)

    def test_no_changes_on_stable_block(self):
        stable = step_counts(drop_day=9999)
        report = self._detect(stable)
        assert not report.human_candidates

    def test_outage_pair_filtered(self):
        ts = step_counts(drop_day=9999, n_days=42)
        values = ts.values.copy()
        # a 1.5-day total outage at day 20
        lo, hi = 24 * 20, 24 * 21 + 12
        values[lo:hi] = 0.0
        report = self._detect(ts.with_values(values))
        outagelike = [e for e in report.events if e.cause == "outage-like"]
        human_near = [e for e in report.human_candidates if abs(e.day - 20) <= 3]
        assert len(outagelike) >= 2
        assert not human_near

    def test_boundary_transients_marked(self):
        ts = step_counts(drop_day=2)  # change almost at the series start
        report = self._detect(ts)
        early = [e for e in report.events if e.day <= 6]
        assert all(e.cause == "boundary-transient" for e in early)

    def test_guard_days_zero_disables_boundary_filter(self):
        ts = step_counts(drop_day=2)
        report = self._detect(ts, guard_days=0.0)
        assert not any(e.cause == "boundary-transient" for e in report.events)

    def test_downward_on_day(self):
        report = self._detect(step_counts())
        days = [e.day for e in report.human_candidates if e.is_downward]
        assert report.downward_on_day(days[0])
        assert not report.downward_on_day(days[0] + 1000)

    def test_event_times_ordered(self):
        report = self._detect(step_counts())
        for e in report.events:
            assert e.start_s <= e.time_s
            assert e.end_s >= e.start_s

    def test_filter_outages_flag(self):
        ts = step_counts(drop_day=9999)
        values = ts.values.copy()
        values[24 * 20 : 24 * 21] = 0.0
        report = self._detect(ts.with_values(values), filter_outages=False)
        assert not any(e.cause == "outage-like" for e in report.events)
