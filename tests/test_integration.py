"""End-to-end integration: a small world through the whole stack.

These tests exercise exactly what a downstream user does: build a world,
run a dataset through the builder, aggregate geographically, and confirm
the ground-truth events surface as detections.
"""

from __future__ import annotations

from datetime import date

import numpy as np
import pytest

from repro.core.aggregate import GridAggregator
from repro.core.pipeline import BlockPipeline
from repro.datasets.builder import DatasetBuilder
from repro.net.events import WorkFromHome
from repro.net.world import WorldModel, scenario_covid2020


@pytest.fixture(scope="module")
def analyzed_world():
    """A 90-block boosted world analyzed over 2020q1 with 4 observers."""
    world = WorldModel(
        scenario_covid2020(), n_blocks=90, seed=77, diurnal_boost=3.0
    )
    builder = DatasetBuilder(world, BlockPipeline())
    result = builder.analyze("2020q1-ejnw")
    return world, builder, result


class TestEndToEnd:
    def test_funnel_is_plausible(self, analyzed_world):
        _, _, result = analyzed_world
        funnel = result.funnel()
        assert funnel.routed == 90
        assert 0 < funnel.responsive < 90
        assert 0 < funnel.change_sensitive < funnel.responsive

    def test_change_sensitive_blocks_are_diurnal_kinds(self, analyzed_world):
        _, _, result = analyzed_world
        for cidr in result.change_sensitive():
            kind = result.block_specs[cidr].kind
            assert kind in ("pool", "workplace", "home"), (cidr, kind)

    def test_nat_and_server_blocks_never_change_sensitive(self, analyzed_world):
        _, _, result = analyzed_world
        for cidr, analysis in result.analyses.items():
            if result.block_specs[cidr].kind in ("nat", "server"):
                assert not analysis.is_change_sensitive

    def test_wfh_events_detected_in_cs_blocks(self, analyzed_world):
        world, _, result = analyzed_world
        hits = 0
        eligible = 0
        for cidr in result.change_sensitive():
            spec = result.block_specs[cidr]
            wfh = [e for e in spec.events if isinstance(e, WorkFromHome)]
            if not wfh:
                continue
            wfh_day = (wfh[0].start - world.epoch.date()).days
            window = result.spec.start_s(world.epoch) / 86_400.0
            if not (window + 7 <= wfh_day <= window + result.spec.duration_days - 7):
                continue
            eligible += 1
            analysis = result.analyses[cidr]
            days = analysis.downward_change_days()
            if any(abs(d - wfh_day) <= 4 for d in days):
                hits += 1
        if eligible:
            assert hits / eligible >= 0.3  # recall is imperfect, not absent

    def test_aggregation_roundtrip(self, analyzed_world):
        _, _, result = analyzed_world
        agg = GridAggregator(min_responsive=2, min_change_sensitive=1)
        agg.add_all(result.records())
        coverage = agg.coverage()
        assert coverage.n_cells > 5
        assert coverage.cs_blocks_total == len(result.change_sensitive())

    def test_reanalysis_is_deterministic(self, analyzed_world):
        world, _, result = analyzed_world
        builder2 = DatasetBuilder(world, BlockPipeline())
        cs1 = sorted(result.change_sensitive())
        result2 = builder2.analyze("2020q1-ejnw")
        assert sorted(result2.change_sensitive()) == cs1

    def test_counts_never_exceed_eb(self, analyzed_world):
        world, builder, result = analyzed_world
        for cidr in list(result.analyses)[:20]:
            analysis = result.analyses[cidr]
            if analysis.reconstruction.eb_size == 0:
                continue
            values = analysis.counts.values
            good = np.isfinite(values)
            if good.any():
                assert values[good].max() <= analysis.reconstruction.eb_size
                assert values[good].min() >= 0
