"""Edge-case coverage across layers."""

from __future__ import annotations

from datetime import datetime

import numpy as np
import pytest

from repro.datasets.catalog import CATALOG
from repro.net.events import Calendar
from repro.net.usage import (
    FirewalledUsage,
    NatGatewayUsage,
    WorkplaceUsage,
    round_grid,
)
from repro.net.world import scenario_baseline2023, scenario_covid2020
from repro.timeseries.series import TimeSeries


class TestCatalogHorizons:
    """Every dataset window must fit inside its scenario's horizon."""

    def test_2020_datasets_fit_covid_scenario(self):
        scenario = scenario_covid2020()
        for name, ds in CATALOG.items():
            if ds.start.year not in (2019, 2020):
                continue
            start = ds.start_s(scenario.epoch)
            assert start >= 0, name
            assert start + ds.duration_s <= scenario.max_duration_s + 1, name

    def test_2023_datasets_fit_control_scenario(self):
        scenario = scenario_baseline2023()
        for name, ds in CATALOG.items():
            if ds.start.year != 2023:
                continue
            start = ds.start_s(scenario.epoch)
            assert start >= 0, name
            assert start + ds.duration_s <= scenario.max_duration_s + 1, name


class TestResampleMinCount:
    def test_min_count_filters_sparse_bins(self):
        ts = TimeSeries(np.array([0.0, 10.0, 3700.0]), np.array([1.0, 3.0, 5.0]))
        strict = ts.resample_mean(3600.0, min_count=2)
        assert strict.values[0] == pytest.approx(2.0)
        assert np.isnan(strict.values[1])  # only one sample in hour 2


class TestZeroAddressBlocks:
    def test_firewalled_block_through_pipeline(self):
        from repro.core.pipeline import BlockPipeline
        from repro.net.prober import TrinocularObserver, probe_order

        cal = Calendar(epoch=datetime(2020, 1, 1))
        truth = FirewalledUsage(eb_addresses=8).generate(
            np.random.default_rng(0), round_grid(3 * 86_400.0), cal
        )
        order = probe_order(truth.n_addresses, 0)
        log = TrinocularObserver("e").observe(truth, order)
        analysis = BlockPipeline().analyze([log], truth.addresses)
        assert not analysis.classification.responsive
        assert analysis.trend is None

    def test_nat_block_is_responsive_but_flat(self):
        from repro.core.pipeline import BlockPipeline
        from repro.net.prober import TrinocularObserver, probe_order

        cal = Calendar(epoch=datetime(2020, 1, 1))
        truth = NatGatewayUsage(n_routers=3, stale_addresses=0).generate(
            np.random.default_rng(0), round_grid(7 * 86_400.0), cal
        )
        order = probe_order(truth.n_addresses, 0)
        log = TrinocularObserver("e").observe(truth, order)
        analysis = BlockPipeline().analyze([log], truth.addresses)
        assert analysis.classification.responsive
        assert not analysis.classification.is_diurnal
        assert not analysis.is_change_sensitive


class TestShortObservationWindows:
    def test_two_day_window_classifies_without_trend(self):
        from repro.core.pipeline import BlockPipeline
        from repro.net.prober import TrinocularObserver, probe_order

        cal = Calendar(epoch=datetime(2020, 1, 1))
        truth = WorkplaceUsage(n_desktops=30, n_servers=1).generate(
            np.random.default_rng(1), round_grid(2 * 86_400.0), cal
        )
        order = probe_order(truth.n_addresses, 1)
        log = TrinocularObserver("e").observe(truth, order)
        analysis = BlockPipeline().analyze([log], truth.addresses)
        # two days is under the diurnal test's min_days: never CS, and the
        # pipeline must not crash trying to extract a trend
        assert not analysis.is_change_sensitive

    def test_empty_observation_list(self):
        from repro.core.pipeline import BlockPipeline

        analysis = BlockPipeline().analyze([], np.array([1, 2], dtype=np.int16))
        assert not analysis.classification.responsive


class TestWorldEdgeCases:
    def test_zero_blocks_world(self):
        from repro.net.world import WorldModel

        world = WorldModel(scenario_covid2020(), n_blocks=0, seed=1)
        assert world.blocks == ()

    def test_fully_unresponsive_world(self):
        from repro.net.world import WorldModel

        world = WorldModel(
            scenario_covid2020(), n_blocks=20, seed=1, unresponsive_fraction=1.0
        )
        assert all(s.kind == "firewalled" for s in world.blocks)

    def test_fully_responsive_world(self):
        from repro.net.world import WorldModel

        world = WorldModel(
            scenario_covid2020(), n_blocks=20, seed=1, unresponsive_fraction=0.0
        )
        assert all(s.kind != "firewalled" for s in world.blocks)
