"""Additional coverage: experiment helpers, sparkline/table rendering,
and hypothesis properties of the calendar and usage generators."""

from __future__ import annotations

from datetime import date, datetime

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.common import fmt_table, sparkline, top_peaks
from repro.net.events import Calendar, Channel, Holiday, WorkFromHome
from repro.net.usage import (
    DynamicPoolUsage,
    HomeEveningUsage,
    WorkplaceUsage,
    round_grid,
)


class TestReportHelpers:
    def test_fmt_table_alignment(self):
        text = fmt_table(["a", "long"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows padded to equal width

    def test_sparkline_scaling(self):
        line = sparkline(np.array([0.0, 0.5, 1.0]))
        assert len(line) == 3
        assert line[0] == " "
        assert line[-1] == "@"

    def test_sparkline_empty_and_flat(self):
        assert sparkline(np.array([])) == ""
        assert sparkline(np.zeros(4)) == "    "

    def test_top_peaks(self):
        peaks = top_peaks(np.array([1.0, 9.0, 3.0]), k=2)
        assert peaks[0] == (1, 9.0)
        assert peaks[1] == (2, 3.0)


class TestCalendarProperties:
    @given(
        st.integers(min_value=-365, max_value=365),
        st.floats(min_value=-12, max_value=14, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_weekday_cycles_every_seven_days(self, day, tz):
        cal = Calendar(epoch=datetime(2020, 1, 1), tz_hours=tz)
        assert cal.weekday(day) == cal.weekday(day + 7)

    @given(st.integers(min_value=-365, max_value=365))
    @settings(max_examples=50, deadline=None)
    def test_date_day_roundtrip(self, day):
        cal = Calendar(epoch=datetime(2020, 1, 1))
        assert cal.day_of_date(cal.date_of_day(day)) == day

    @given(
        st.integers(min_value=0, max_value=200),
        st.sampled_from(list(Channel)),
    )
    @settings(max_examples=50, deadline=None)
    def test_activity_factor_positive(self, day, channel):
        cal = Calendar(
            epoch=datetime(2020, 1, 1),
            events=(
                WorkFromHome(start=date(2020, 3, 15)),
                Holiday(first=date(2020, 1, 20)),
            ),
        )
        factor = cal.activity_factor(day, channel)
        assert 0.0 < factor < 2.0


class TestUsageProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_workplace_truth_is_deterministic_per_seed(self, seed):
        cal = Calendar(epoch=datetime(2020, 1, 1))
        grid = round_grid(3 * 86_400.0)
        usage = WorkplaceUsage(n_desktops=10, n_servers=1)
        a = usage.generate(np.random.default_rng(seed), grid, cal)
        b = usage.generate(np.random.default_rng(seed), grid, cal)
        assert np.array_equal(a.active, b.active)
        assert np.array_equal(a.addresses, b.addresses)

    @given(st.integers(min_value=4, max_value=64))
    @settings(max_examples=15, deadline=None)
    def test_pool_counts_bounded_by_pool_size(self, pool_size):
        cal = Calendar(epoch=datetime(2020, 1, 1))
        usage = DynamicPoolUsage(pool_size=pool_size, stale_addresses=0)
        truth = usage.generate(
            np.random.default_rng(1), round_grid(2 * 86_400.0), cal
        )
        assert truth.counts().max() <= pool_size

    @given(st.integers(min_value=2, max_value=40))
    @settings(max_examples=15, deadline=None)
    def test_home_eb_includes_stale(self, n_devices):
        usage = HomeEveningUsage(n_devices=n_devices, stale_addresses=4)
        assert usage.eb_size() == min(n_devices + 4, 256)


class TestExamplesImportable:
    """The example scripts must at least parse and expose main()."""

    @pytest.mark.parametrize(
        "name",
        ["quickstart", "global_wfh_scan", "curfew_discovery", "congestion_repair"],
    )
    def test_example_compiles(self, name):
        import pathlib

        path = pathlib.Path(__file__).parent.parent / "examples" / f"{name}.py"
        source = path.read_text()
        compiled = compile(source, str(path), "exec")
        assert "main" in source
        assert compiled is not None
