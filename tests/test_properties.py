"""Property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.reconstruction import reconstruct
from repro.core.repair import one_loss_repair
from repro.net.observations import ObservationSeries, merge_observations
from repro.timeseries.detect import detect_cusum
from repro.timeseries.loess import loess_smooth
from repro.timeseries.naive import naive_decompose
from repro.timeseries.series import TimeSeries
from repro.timeseries.stl import stl_decompose

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


@st.composite
def observation_series(draw, max_len=60):
    n = draw(st.integers(min_value=0, max_value=max_len))
    times = np.cumsum(
        np.asarray(draw(st.lists(st.floats(0.1, 100.0), min_size=n, max_size=n)))
    )
    addrs = np.asarray(
        draw(st.lists(st.integers(0, 7), min_size=n, max_size=n)), dtype=np.int16
    )
    results = np.asarray(
        draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool
    )
    return ObservationSeries(times=times, addresses=addrs, results=results, observer="h")


class TestRepairProperties:
    @given(observation_series())
    @settings(max_examples=60, deadline=None)
    def test_repair_only_flips_zero_to_one(self, obs):
        repaired = one_loss_repair(obs)
        # monotone: never turns a reply into a non-reply
        assert not np.any(obs.results & ~repaired.results)

    @given(observation_series())
    @settings(max_examples=60, deadline=None)
    def test_repair_is_idempotent(self, obs):
        once = one_loss_repair(obs)
        twice = one_loss_repair(once)
        assert np.array_equal(once.results, twice.results)

    @given(observation_series())
    @settings(max_examples=60, deadline=None)
    def test_repair_preserves_times_and_addresses(self, obs):
        repaired = one_loss_repair(obs)
        assert np.array_equal(repaired.times, obs.times)
        assert np.array_equal(repaired.addresses, obs.addresses)


class TestMergeProperties:
    @given(st.lists(observation_series(max_len=25), min_size=0, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_merge_preserves_probe_count(self, series_list):
        merged = merge_observations(series_list)
        assert len(merged) == sum(len(s) for s in series_list)

    @given(st.lists(observation_series(max_len=25), min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_merge_output_time_ordered(self, series_list):
        merged = merge_observations(series_list)
        if len(merged) > 1:
            assert np.all(np.diff(merged.times) >= 0)

    @given(st.lists(observation_series(max_len=25), min_size=1, max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_merge_preserves_reply_totals(self, series_list):
        merged = merge_observations(series_list)
        assert merged.results.sum() == sum(s.results.sum() for s in series_list)


class TestReconstructionProperties:
    @given(observation_series(max_len=50))
    @settings(max_examples=60, deadline=None)
    def test_counts_bounded_by_eb(self, obs):
        eb = np.arange(8, dtype=np.int16)
        grid = np.linspace(0.0, 5000.0, 23)
        recon = reconstruct(obs, eb, grid)
        values = recon.counts.values
        good = np.isfinite(values)
        if good.any():
            assert values[good].min() >= 0
            assert values[good].max() <= eb.size

    @given(observation_series(max_len=50))
    @settings(max_examples=60, deadline=None)
    def test_counts_nan_before_completion(self, obs):
        eb = np.arange(8, dtype=np.int16)
        grid = np.linspace(0.0, 5000.0, 23)
        recon = reconstruct(obs, eb, grid)
        if recon.is_complete:
            before = grid < recon.complete_time_s
            assert np.isnan(recon.counts.values[before]).all()
        else:
            assert np.isnan(recon.counts.values).all()

    @given(observation_series(max_len=50))
    @settings(max_examples=30, deadline=None)
    def test_repair_never_decreases_counts(self, obs):
        eb = np.arange(8, dtype=np.int16)
        grid = np.linspace(0.0, 5000.0, 17)
        plain = reconstruct(obs, eb, grid).counts.values
        fixed = reconstruct(one_loss_repair(obs), eb, grid).counts.values
        both = np.isfinite(plain) & np.isfinite(fixed)
        # 1-loss repair only adds replies, counts can only stay or grow
        # at probe boundaries; allow equality everywhere
        assert np.all(fixed[both] >= plain[both] - 1e-9)


class TestDecompositionProperties:
    series_strategy = arrays(
        np.float64,
        st.integers(min_value=48, max_value=120),
        elements=st.floats(-100, 100, allow_nan=False),
    )

    @given(series_strategy)
    @settings(max_examples=30, deadline=None)
    def test_stl_exact_additivity(self, values):
        res = stl_decompose(values, 12, seasonal_smoother=None, outer_iterations=0)
        assert np.allclose(res.trend + res.seasonal + res.residual, values, atol=1e-6)

    @given(series_strategy)
    @settings(max_examples=30, deadline=None)
    def test_naive_exact_additivity(self, values):
        res = naive_decompose(values, 12)
        assert np.allclose(res.trend + res.seasonal + res.residual, values, atol=1e-6)

    @given(
        st.floats(-50, 50, allow_nan=False),
        st.integers(min_value=48, max_value=96),
    )
    @settings(max_examples=30, deadline=None)
    def test_stl_constant_series_gives_constant_trend(self, level, n):
        res = stl_decompose(np.full(n, level), 12, seasonal_smoother=None)
        assert np.allclose(res.trend, level, atol=1e-6)
        assert np.allclose(res.seasonal, 0.0, atol=1e-6)


class TestCusumProperties:
    @given(
        arrays(
            np.float64,
            st.integers(min_value=2, max_value=200),
            elements=st.floats(-10, 10, allow_nan=False),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_alarms_are_ordered_and_in_range(self, values):
        result = detect_cusum(values, threshold=1.0, drift=0.01)
        for alarm in result.alarms:
            assert 0 <= alarm.start <= alarm.alarm < values.size
            assert alarm.direction in (-1, 1)

    @given(
        arrays(
            np.float64,
            st.integers(min_value=2, max_value=200),
            elements=st.floats(-10, 10, allow_nan=False),
        ),
        st.floats(0.1, 5.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_higher_threshold_never_more_alarms(self, values, threshold):
        low = detect_cusum(values, threshold=threshold, drift=0.01)
        high = detect_cusum(values, threshold=threshold * 2, drift=0.01)
        assert len(high) <= len(low)

    @given(st.floats(-5, 5, allow_nan=False), st.integers(10, 100))
    @settings(max_examples=30, deadline=None)
    def test_constant_series_never_alarms(self, level, n):
        assert len(detect_cusum(np.full(n, level))) == 0


class TestLoessProperties:
    @given(
        arrays(
            np.float64,
            st.integers(min_value=5, max_value=80),
            elements=st.floats(-100, 100, allow_nan=False),
        ),
        st.integers(min_value=2, max_value=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_output_within_data_hull_for_degree_zero(self, values, q):
        x = np.arange(values.size, dtype=float)
        out = loess_smooth(x, values, q, degree=0)
        assert out.min() >= values.min() - 1e-6
        assert out.max() <= values.max() + 1e-6

    @given(st.floats(-100, 100, allow_nan=False), st.floats(-10, 10, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_linear_invariance(self, intercept, slope):
        x = np.arange(40, dtype=float)
        y = intercept + slope * x
        out = loess_smooth(x, y, q=11, degree=1)
        assert np.allclose(out, y, atol=max(1e-6, 1e-9 * abs(intercept)))


class TestTimeSeriesProperties:
    @given(
        st.lists(st.floats(0.1, 100, allow_nan=False), min_size=1, max_size=50),
        st.floats(0, 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_zscore_bounded_mean(self, deltas, _):
        times = np.cumsum(np.asarray(deltas))
        values = np.sin(times)
        z = TimeSeries(times, values).zscore()
        good = np.isfinite(z.values)
        if good.any():
            assert abs(z.values[good].mean()) < 1e-6

    @given(st.lists(st.floats(0.1, 100, allow_nan=False), min_size=2, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_resample_mean_preserves_total_mass_roughly(self, deltas):
        times = np.cumsum(np.asarray(deltas))
        values = np.ones_like(times)
        hourly = TimeSeries(times, values).resample_mean(3600.0)
        good = np.isfinite(hourly.values)
        assert np.allclose(hourly.values[good], 1.0)
