"""Unit tests for the telemetry subsystem (repro.obs) and its engine hooks."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.core.stages import StageContext
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MaxGauge,
    MetricsRegistry,
    get_registry,
    scoped_registry,
)
from repro.obs.sinks import git_describe, load_run, render_report, write_run
from repro.obs.trace import NOOP, Tracer, get_tracer, use_tracer
from repro.runtime import (
    CampaignEngine,
    ParallelExecutor,
    RunMetrics,
    SerialExecutor,
    StageTotals,
    default_engine,
)


def _square(x: int) -> int:
    return x * x


class TestTracer:
    def test_default_is_noop(self):
        tracer = get_tracer()
        assert tracer is NOOP
        assert not tracer.enabled
        with tracer.span("anything") as handle:
            handle.set(ignored=True)  # must be accepted and dropped
        assert tracer.finished == ()

    def test_nesting_records_parentage(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        inner, outer_rec = tracer.finished  # inner closes first
        assert inner.name == "inner" and outer_rec.name == "outer"
        assert inner.parent_id == outer_rec.span_id
        assert outer_rec.parent_id is None
        assert inner.trace_id == outer_rec.trace_id == tracer.trace_id
        assert inner.wall_s >= 0.0 and inner.start_unix > 0.0

    def test_root_parent_id_attaches_fragments(self):
        fragment = Tracer(trace_id="t", root_parent_id="campaign-span")
        with fragment.span("block"):
            pass
        assert fragment.finished[0].parent_id == "campaign-span"

    def test_annotate_sets_attrs_on_innermost_span(self):
        tracer = Tracer()
        with tracer.span("block"):
            tracer.annotate(block="1.2.3.0/24")
        assert tracer.finished[0].attrs["block"] == "1.2.3.0/24"
        tracer.annotate(dropped=True)  # no open span: silently ignored

    def test_tags_apply_to_spans_closed_inside(self):
        tracer = Tracer()
        with tracer.tagged(protocol="s3.4"):
            with tracer.span("campaign"):
                pass
        with tracer.span("untagged"):
            pass
        tagged, untagged = tracer.finished
        assert tagged.attrs["protocol"] == "s3.4"
        assert "protocol" not in untagged.attrs

    def test_use_tracer_restores_previous(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
        assert get_tracer() is NOOP

    def test_adopt_and_span_record_roundtrip(self):
        tracer = Tracer()
        with tracer.span("a", attrs={"k": 1}):
            pass
        record = tracer.finished[0]
        other = Tracer()
        other.adopt([record])
        assert other.finished == [record]
        clone = type(record).from_dict(json.loads(json.dumps(record.as_dict())))
        assert clone == record

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.finished[0].name == "boom"
        assert tracer.current_span_id is None


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        reg.gauge("g").set(2.5)
        hist = reg.histogram("h", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            hist.observe(v)
        snap = reg.snapshot()
        assert snap["c"] == {"type": "counter", "value": 5}
        assert snap["g"] == {"type": "gauge", "value": 2.5}
        assert snap["h"]["counts"] == [1, 1, 1]  # <=0.1, <=1.0, overflow
        assert snap["h"]["count"] == 3 and snap["h"]["sum"] == pytest.approx(5.55)

    def test_histogram_bucket_edges_are_le(self):
        hist = Histogram(buckets=(1.0, 2.0))
        hist.observe(1.0)  # on the boundary: belongs to the <=1.0 bucket
        assert hist.counts == [1, 0, 0]

    def test_histogram_quantile_and_mean(self):
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            hist.observe(v)
        assert hist.mean == pytest.approx(1.625)
        assert hist.quantile(0.5) == 2.0
        assert Histogram().quantile(0.9) == 0.0

    def test_invalid_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        snap = reg.reset()
        assert snap["c"]["value"] == 3
        assert len(reg) == 0

    def test_merge_folds_worker_snapshots(self):
        worker = MetricsRegistry()
        worker.counter("c").inc(2)
        worker.gauge("g").set(7)
        worker.histogram("h", buckets=(1.0,)).observe(0.5)
        parent = MetricsRegistry()
        parent.counter("c").inc(1)
        parent.merge(worker.snapshot())
        parent.merge(worker.snapshot())
        snap = parent.snapshot()
        assert snap["c"]["value"] == 5
        assert snap["g"]["value"] == 7.0
        assert snap["h"]["counts"] == [2, 0] and snap["h"]["count"] == 2

    def test_merge_bucket_mismatch_raises(self):
        parent = MetricsRegistry()
        parent.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="bucket mismatch"):
            parent.merge(
                {"h": {"type": "histogram", "bounds": [5.0], "counts": [0, 0], "sum": 0.0, "count": 0}}
            )

    def test_scoped_registry_isolates_and_restores(self):
        outer = get_registry()
        with scoped_registry() as inner:
            assert get_registry() is inner
            inner.counter("only-here").inc()
        assert get_registry() is outer
        assert "only-here" not in outer.snapshot()

    def test_max_gauge_keeps_high_water(self):
        gauge = MaxGauge()
        gauge.set(5.0)
        gauge.set(3.0)  # lower values never pull the high-water down
        assert gauge.value == 5.0
        gauge.set(9.0)
        assert gauge.as_dict() == {"type": "max", "value": 9.0}

    def test_max_gauge_merge_takes_max(self):
        parent = MetricsRegistry()
        parent.max_gauge("m").set(4.0)
        worker = MetricsRegistry()
        worker.max_gauge("m").set(7.0)
        parent.merge(worker.snapshot())
        assert parent.snapshot()["m"]["value"] == 7.0
        parent.merge({"m": {"type": "max", "value": 2.0}})
        assert parent.snapshot()["m"]["value"] == 7.0

    @staticmethod
    def _worker_snapshot(seed: int) -> dict:
        reg = MetricsRegistry()
        reg.counter("c").inc(seed)
        reg.gauge("g").set(float(seed))
        reg.max_gauge("m").set(float(seed * 3))
        hist = reg.histogram("h", buckets=(1.0, 2.0))
        # boundary values on purpose: 1.0 and 2.0 land in their <= bucket
        for value in (0.5, 1.0, 2.0, float(seed)):
            hist.observe(value)
        return reg.snapshot()

    def test_merge_of_merged_equals_merge_of_originals(self):
        """Merging is associative: pre-folding worker pairs changes nothing.

        This is the property the engine relies on when parallel workers
        ship snapshots home in arbitrary interleavings: any grouping of
        the same snapshots must fold to the same totals.
        """
        snaps = [self._worker_snapshot(s) for s in (1, 2, 3, 4)]

        flat = MetricsRegistry()
        for snap in snaps:
            flat.merge(snap)

        left = MetricsRegistry()
        left.merge(snaps[0])
        left.merge(snaps[1])
        right = MetricsRegistry()
        right.merge(snaps[2])
        right.merge(snaps[3])
        grouped = MetricsRegistry()
        grouped.merge(left.snapshot())
        grouped.merge(right.snapshot())

        # order-preserving grouping (what staged merging does) is exact;
        # counters/histograms/max-gauges are order-insensitive outright,
        # plain gauges keep last-write-wins semantics either way
        assert grouped.snapshot() == flat.snapshot()

    def test_merge_preserves_histogram_bucket_edges(self):
        """Boundary observations stay in their <= bucket across a merge."""
        worker = MetricsRegistry()
        worker.histogram("h", buckets=(1.0, 2.0)).observe(1.0)
        worker.histogram("h").observe(2.0)
        parent = MetricsRegistry()
        parent.histogram("h", buckets=(1.0, 2.0)).observe(1.0)
        parent.merge(worker.snapshot())
        snap = parent.snapshot()["h"]
        assert snap["counts"] == [2, 1, 0]
        assert snap["count"] == 3


class TestTracedEngineRun:
    def test_traced_run_adopts_block_spans_and_meters(self):
        tracer = Tracer()
        engine = CampaignEngine(SerialExecutor())
        run = engine.run(_square, [1, 2, 3], label="squares", tracer=tracer)
        assert run.results == [1, 4, 9]
        names = [s.name for s in tracer.finished]
        assert names.count("block") == 3 and names.count("campaign") == 1
        campaign = next(s for s in tracer.finished if s.name == "campaign")
        assert campaign.attrs["label"] == "squares"
        blocks = [s for s in tracer.finished if s.name == "block"]
        assert all(b.parent_id == campaign.span_id for b in blocks)
        assert run.metrics.meters["engine.tasks"]["value"] == 3

    def test_traced_parallel_matches_serial_results(self):
        tracer = Tracer()
        engine = CampaignEngine(ParallelExecutor(workers=2, chunk_size=2))
        run = engine.run(_square, list(range(10)), label="p", tracer=tracer)
        assert run.results == [i * i for i in range(10)]
        assert sum(1 for s in tracer.finished if s.name == "block") == 10

    def test_untraced_run_has_no_meters(self):
        run = CampaignEngine(SerialExecutor()).run(_square, [1, 2], label="u")
        assert run.metrics.meters is None


class TestSatelliteFixes:
    def test_blocks_per_sec_zero_time_and_empty(self):
        assert RunMetrics("x", "serial", n_tasks=5, wall_s=0.0).blocks_per_sec == 0.0
        assert RunMetrics("x", "serial", n_tasks=0, wall_s=0.0).blocks_per_sec == 0.0
        assert RunMetrics("x", "serial", n_tasks=0, wall_s=2.0).blocks_per_sec == 0.0
        assert RunMetrics("x", "serial", n_tasks=4, wall_s=2.0).blocks_per_sec == 2.0
        exported = json.dumps(RunMetrics("x", "serial", 5, 0.0).as_dict())
        assert "Infinity" not in exported

    def test_default_engine_warns_on_garbage_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.warns(RuntimeWarning, match="'many' is not an integer"):
            engine = default_engine()
        assert isinstance(engine.executor, SerialExecutor)

    def test_default_engine_clamps_negative_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "-3")
        with pytest.warns(RuntimeWarning, match="'-3' is negative"):
            engine = default_engine()
        assert isinstance(engine.executor, SerialExecutor)

    def test_default_engine_valid_values_stay_silent(self, monkeypatch):
        import warnings as warnings_mod

        for value, executor_cls in [("0", SerialExecutor), ("3", ParallelExecutor)]:
            monkeypatch.setenv("REPRO_WORKERS", value)
            with warnings_mod.catch_warnings():
                warnings_mod.simplefilter("error")
                assert isinstance(default_engine().executor, executor_cls)

    def test_stage_context_as_dict_aggregates_duplicates(self):
        ctx = StageContext()
        with ctx.stage("repair", n_in=10) as active:
            active.n_out = 9
        with ctx.stage("repair", n_in=9) as active:
            active.n_out = 8
        d = ctx.as_dict()["repair"]
        assert d["calls"] == 2
        assert d["n_in"] == 9 and d["n_out"] == 8  # most recent invocation
        assert d["wall_s"] == pytest.approx(ctx.total_wall_s)

    def test_stage_context_as_dict_single_call_has_calls_one(self):
        ctx = StageContext()
        ctx.skip("detect", "no-trend")
        assert ctx.as_dict()["detect"] == {
            "wall_s": 0.0,
            "cpu_s": 0.0,
            "rss_delta": 0,
            "n_in": 0,
            "n_out": 0,
            "skipped": "no-trend",
            "calls": 1,
        }


class TestSinks:
    def _run_metrics(self) -> RunMetrics:
        return RunMetrics(
            label="analyze:test",
            executor="serial",
            n_tasks=3,
            wall_s=0.25,
            stages={"repair": StageTotals(calls=3, wall_s=0.01, n_in=30, n_out=30)},
            funnel={"routed": 3, "responsive": 2},
        )

    def test_write_load_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("run", attrs={"experiment": "test"}):
            with tracer.span("campaign"):
                pass
        metrics = self._run_metrics()
        out = write_run(
            tmp_path / "trace",
            tracer=tracer,
            runs=[metrics],
            label="test",
            meters={"c": {"type": "counter", "value": 1}},
        )
        saved = load_run(out)
        assert saved.manifest["label"] == "test"
        assert saved.manifest["trace_id"] == tracer.trace_id
        assert saved.manifest["n_spans"] == 2
        assert saved.manifest["funnel"] == {"routed": 3, "responsive": 2}
        assert saved.manifest["meters"]["c"]["value"] == 1
        assert saved.spans == tracer.finished
        assert len(saved.runs) == 1
        assert saved.runs[0].report() == metrics.report()
        children = saved.span_children()
        (root,) = children[None]
        assert root.name == "run"

    def test_render_report_contains_tables_and_header(self, tmp_path):
        tracer = Tracer()
        with tracer.span("run"):
            pass
        out = write_run(tmp_path, tracer=tracer, runs=[self._run_metrics()], label="t")
        text = render_report(load_run(out))
        assert "run 't'" in text
        assert "REPRO_SCALE" in text
        assert self._run_metrics().report() in text

    def test_load_run_requires_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="run.json"):
            load_run(tmp_path)

    def test_manifest_is_valid_strict_json(self, tmp_path):
        tracer = Tracer()
        # zero-time metrics must not leak Infinity into the manifest
        zero = RunMetrics(label="z", executor="serial", n_tasks=0, wall_s=0.0)
        out = write_run(tmp_path, tracer=tracer, runs=[zero], label="z")
        for name in ("run.json", "metrics.jsonl"):
            text = (out / name).read_text()
            assert "Infinity" not in text and "NaN" not in text

    def test_git_describe_is_string_or_none(self):
        desc = git_describe()
        assert desc is None or (isinstance(desc, str) and desc)
