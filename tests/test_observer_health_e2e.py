"""End-to-end observer health: the §2.7 test that dropped sites c and g.

The 2020 scenario marks observers c and g as broken (heavy random loss).
Comparing per-observer reply rates across blocks must flag exactly those
two sites, reproducing the paper's decision to discard them for 2020.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.combine import compare_observers, flag_outlier_observers
from repro.datasets.builder import DatasetBuilder
from repro.net.world import WorldModel, scenario_covid2020

OBSERVERS = ("c", "e", "g", "j", "n", "w")


@pytest.fixture(scope="module")
def health_survey():
    world = WorldModel(scenario_covid2020(), n_blocks=40, seed=55)
    builder = DatasetBuilder(world)
    per_block = []
    for spec in world.blocks:
        if not spec.responsive_by_design:
            continue
        start = 92 * 86_400.0
        logs = [
            builder.observe(spec, obs, start, 7 * 86_400.0) for obs in OBSERVERS
        ]
        health = compare_observers(logs)
        if all(np.isfinite(h.reply_rate) for h in health):
            per_block.append(health)
    return per_block


class TestObserverHealth:
    def test_broken_sites_flagged(self, health_survey):
        flagged = flag_outlier_observers(health_survey)
        assert "c" in flagged
        assert "g" in flagged

    def test_healthy_sites_not_flagged(self, health_survey):
        flagged = flag_outlier_observers(health_survey)
        assert "e" not in flagged
        assert "j" not in flagged
        assert "n" not in flagged

    def test_enough_blocks_surveyed(self, health_survey):
        assert len(health_survey) >= 5
