"""Unit tests for address reconstruction and full-scan durations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.reconstruction import full_scan_durations, reconstruct
from repro.net.observations import ObservationSeries


def series(times, addrs, results):
    return ObservationSeries(
        times=np.asarray(times, dtype=float),
        addresses=np.asarray(addrs, dtype=np.int16),
        results=np.asarray(results, dtype=bool),
    )


class TestReconstruct:
    def test_paper_toy_example(self):
        """The Figure 2 table (also covered by the fig2 experiment)."""
        from repro.experiments.fig2 import EXPECTED_ESTIMATES, run

        assert run().estimates == EXPECTED_ESTIMATES

    def test_incomplete_until_all_seen(self):
        eb = np.array([1, 2, 3], dtype=np.int16)
        obs = series([0, 10], [1, 2], [True, True])  # address 3 never probed
        recon = reconstruct(obs, eb, np.array([0.0, 10.0, 20.0]))
        assert not recon.is_complete
        assert np.isnan(recon.counts.values).all()

    def test_complete_time_is_last_first_sighting(self):
        eb = np.array([1, 2], dtype=np.int16)
        obs = series([0, 100], [1, 2], [True, True])
        recon = reconstruct(obs, eb, np.array([0.0, 50.0, 150.0]))
        assert recon.complete_time_s == pytest.approx(100.0)
        assert np.isnan(recon.counts.values[0])
        assert recon.counts.values[2] == pytest.approx(2.0)

    def test_holds_last_state(self):
        eb = np.array([1], dtype=np.int16)
        obs = series([0, 100], [1, 1], [True, False])
        recon = reconstruct(obs, eb, np.array([0.0, 50.0, 150.0]))
        assert recon.counts.values[1] == pytest.approx(1.0)  # held between probes
        assert recon.counts.values[2] == pytest.approx(0.0)

    def test_ignores_addresses_outside_eb(self):
        eb = np.array([1], dtype=np.int16)
        obs = series([0, 1], [1, 99], [True, True])
        recon = reconstruct(obs, eb, np.array([5.0]))
        assert recon.counts.values[0] == pytest.approx(1.0)

    def test_empty_observation(self):
        recon = reconstruct(series([], [], []), np.array([1, 2]), np.array([0.0, 1.0]))
        assert not recon.is_complete

    def test_all_negative_probes_give_zero(self):
        eb = np.array([1, 2], dtype=np.int16)
        obs = series([0, 1], [1, 2], [False, False])
        recon = reconstruct(obs, eb, np.array([10.0]))
        assert recon.counts.values[0] == pytest.approx(0.0)

    def test_max_count_property(self):
        eb = np.array([1, 2], dtype=np.int16)
        obs = series([0, 1, 50], [1, 2, 2], [True, True, False])
        recon = reconstruct(obs, eb, np.array([2.0, 60.0]))
        assert recon.max_count == pytest.approx(2.0)

    def test_matches_truth_under_dense_probing(self, workplace_block):
        _, truth, _, _ = workplace_block
        from repro.net.survey import SurveyObserver

        log = SurveyObserver().observe(truth)
        recon = reconstruct(log, truth.addresses, truth.col_times)
        good = ~np.isnan(recon.counts.values)
        true_counts = truth.counts()
        # dense probing tracks the truth within one round of lag
        diff = np.abs(recon.counts.values[good] - true_counts[good])
        assert np.quantile(diff, 0.95) <= truth.n_addresses * 0.05 + 2


class TestFullScanDurations:
    def test_round_robin_scan_time(self):
        # 4 addresses probed round-robin every 10 s: each full scan spans 30 s
        eb = np.array([0, 1, 2, 3], dtype=np.int16)
        times = np.arange(12) * 10.0
        addrs = np.tile(eb, 3)
        obs = series(times, addrs, np.ones(12, dtype=bool))
        durations = full_scan_durations(obs, eb)
        assert durations[0] == pytest.approx(30.0)

    def test_never_covered_returns_empty(self):
        eb = np.array([0, 1], dtype=np.int16)
        obs = series([0, 1], [0, 0], [True, True])
        assert full_scan_durations(obs, eb).size == 0

    def test_max_scans_limits_output(self):
        eb = np.array([0, 1], dtype=np.int16)
        times = np.arange(20, dtype=float)
        addrs = np.tile(eb, 10)
        obs = series(times, addrs, np.ones(20, dtype=bool))
        assert full_scan_durations(obs, eb, max_scans=3).size == 3

    def test_more_observers_scan_faster(self, workplace_block):
        from repro.net.observations import merge_observations
        from repro.net.prober import TrinocularObserver

        _, truth, order, log1 = workplace_block
        log2 = TrinocularObserver("j", phase_offset_s=300.0).observe(
            truth, order, rng=np.random.default_rng(8)
        )
        solo = full_scan_durations(log1, truth.addresses, max_scans=10)
        both = full_scan_durations(
            merge_observations([log1, log2]), truth.addresses, max_scans=10
        )
        assert np.median(both) < np.median(solo)
