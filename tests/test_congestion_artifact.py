"""Regression test for the §3.3 failure mode.

"When congestion on the link is diurnal, it can falsely imply that
addresses in the target block are used diurnally."  A non-diurnal block
observed through a diurnally congested path must look diurnal before
1-loss repair and stop looking diurnal after it.
"""

from __future__ import annotations

from datetime import datetime

import numpy as np
import pytest

from repro.core.diurnal import DiurnalTest
from repro.core.reconstruction import reconstruct
from repro.core.repair import one_loss_repair
from repro.net.events import Calendar
from repro.net.loss import DiurnalCongestionLoss
from repro.net.prober import TrinocularObserver, probe_order
from repro.net.usage import SparseUsage, round_grid


@pytest.fixture(scope="module")
def congested_observation():
    calendar = Calendar(epoch=datetime(2023, 4, 1), tz_hours=8.0)
    usage = SparseUsage(
        n_addresses=120, mean_on_days=6.0, mean_off_days=3.0, stale_addresses=0
    )
    truth = usage.generate(np.random.default_rng(7), round_grid(28 * 86_400.0), calendar)
    order = probe_order(truth.n_addresses, 7)
    loss = DiurnalCongestionLoss(base=0.04, peak=0.5, peak_hour=21.0, tz_hours=8.0)
    log = TrinocularObserver("w").observe(
        truth, order, loss, np.random.default_rng(3)
    )
    return truth, log


class TestCongestionArtifact:
    def test_ground_truth_is_not_diurnal(self, congested_observation):
        truth, _ = congested_observation
        from repro.timeseries.series import TimeSeries

        counts = TimeSeries(truth.col_times, truth.counts())
        verdict = DiurnalTest().evaluate(counts)
        assert not verdict.is_diurnal

    def test_congestion_fakes_diurnality(self, congested_observation):
        truth, log = congested_observation
        recon = reconstruct(log, truth.addresses, truth.col_times)
        verdict = DiurnalTest().evaluate(recon.counts)
        # the diurnal loss pattern leaks into the reconstruction
        assert verdict.energy_ratio > 0.3

    def test_repair_removes_the_artifact(self, congested_observation):
        truth, log = congested_observation
        raw = reconstruct(log, truth.addresses, truth.col_times)
        fixed = reconstruct(one_loss_repair(log), truth.addresses, truth.col_times)
        raw_ratio = DiurnalTest().evaluate(raw.counts).energy_ratio
        fixed_ratio = DiurnalTest().evaluate(fixed.counts).energy_ratio
        assert fixed_ratio < raw_ratio * 0.7

    def test_repair_restores_mean_activity(self, congested_observation):
        truth, log = congested_observation
        fixed = reconstruct(one_loss_repair(log), truth.addresses, truth.col_times)
        good = np.isfinite(fixed.counts.values)
        recon_mean = float(fixed.counts.values[good].mean())
        truth_mean = float(truth.counts().mean())
        assert recon_mean == pytest.approx(truth_mean, rel=0.1)
