"""Property-based tests on observer invariants."""

from __future__ import annotations

from datetime import datetime

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.events import Calendar
from repro.net.loss import BernoulliLoss
from repro.net.prober import AdditionalProber, TrinocularObserver, probe_order
from repro.net.usage import SparseUsage, round_grid

EPOCH = datetime(2020, 1, 1)


def make_truth(n_addresses: int, seed: int):
    calendar = Calendar(epoch=EPOCH, tz_hours=0.0)
    usage = SparseUsage(
        n_addresses=n_addresses, mean_on_days=1.0, mean_off_days=1.0, stale_addresses=0
    )
    return usage.generate(np.random.default_rng(seed), round_grid(86_400.0), calendar)


class TestTrinocularProperties:
    @given(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=0, max_value=1000),
        st.floats(min_value=0.0, max_value=659.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_probe_times_in_window_and_ordered(self, n, seed, phase):
        truth = make_truth(n, seed)
        order = probe_order(n, seed)
        log = TrinocularObserver("e", phase_offset_s=phase).observe(truth, order)
        if len(log):
            assert log.times[0] >= 0.0
            assert log.times[-1] < truth.duration_s
            assert np.all(np.diff(log.times) >= 0)

    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_probed_addresses_subset_of_eb(self, n, seed):
        truth = make_truth(n, seed)
        order = probe_order(n, seed)
        log = TrinocularObserver("e").observe(truth, order)
        assert set(log.probed_addresses().tolist()) <= set(truth.addresses.tolist())

    @given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_lossless_results_match_truth(self, n, seed):
        truth = make_truth(n, seed)
        order = probe_order(n, seed)
        log = TrinocularObserver("e").observe(truth, order)
        rows = {int(a): i for i, a in enumerate(truth.addresses)}
        for k in range(0, len(log), max(len(log) // 20, 1)):
            row = rows[int(log.addresses[k])]
            col = truth.column_of(float(log.times[k]))
            assert bool(log.results[k]) == bool(truth.active[row, col])

    @given(
        st.integers(min_value=2, max_value=30),
        st.integers(min_value=0, max_value=500),
        st.floats(min_value=0.05, max_value=0.6),
    )
    @settings(max_examples=20, deadline=None)
    def test_loss_only_suppresses_replies(self, n, seed, p):
        truth = make_truth(n, seed)
        order = probe_order(n, seed)
        clean = TrinocularObserver("e").observe(truth, order)
        lossy = TrinocularObserver("e").observe(
            truth, order, BernoulliLoss(p), np.random.default_rng(seed)
        )
        # loss can only lower (or keep) the total reply count
        assert lossy.results.sum() <= clean.results.sum()

    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_determinism(self, n, seed):
        truth = make_truth(n, seed)
        order = probe_order(n, seed)
        a = TrinocularObserver("e").observe(truth, order, rng=np.random.default_rng(1))
        b = TrinocularObserver("e").observe(truth, order, rng=np.random.default_rng(1))
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.results, b.results)


class TestAdditionalProberProperties:
    @given(st.integers(min_value=1, max_value=256))
    @settings(max_examples=50, deadline=None)
    def test_probe_budget_always_meets_target(self, eb):
        prober = AdditionalProber(target_scan_hours=6.0)
        n = prober.probes_per_round(eb)
        assert 1 <= n <= 8
        rounds_needed = int(np.ceil(eb / n))
        # the paper's guarantee: 256-address worst case within 352 min of
        # rounds when combined with existing probers; alone, stay near 6 h
        assert rounds_needed * 660.0 <= 6.5 * 3600.0 or n == 8

    @given(st.integers(min_value=2, max_value=60), st.integers(min_value=0, max_value=400))
    @settings(max_examples=15, deadline=None)
    def test_constant_probes_per_round(self, n, seed):
        truth = make_truth(n, seed)
        order = probe_order(n, seed)
        prober = AdditionalProber()
        log = prober.observe(truth, order)
        per_round = np.bincount((log.times // 660.0).astype(int))
        expected = prober.probes_per_round(n)
        assert per_round.max() == expected
        # every full round sends exactly the budget
        assert np.all(per_round[:-1] == expected)
