"""End-to-end trace round-trip: traced fig3 run -> JSONL -> repro report.

Satellite coverage for the telemetry tentpole: a traced parallel fig3
run at ``REPRO_SCALE=64`` is written to a tmpdir, reloaded from disk,
and checked for (a) a single rooted span tree including per-worker
block spans, (b) stage wall-times consistent between spans and
``RunMetrics``, (c) a report rendered from disk that matches the live
``--metrics`` tables, and (d) serial==parallel byte-identical analyses
with tracing enabled.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro import cli
from repro.datasets.builder import DatasetBuilder
from repro.experiments.common import covid_world
from repro.obs.sinks import load_run
from repro.obs.trace import NOOP, Tracer, get_tracer, use_tracer
from repro.runtime import CampaignEngine, ParallelExecutor, SerialExecutor, drain_run_log

FIG3_DATASET = "2020q1-ejnw"


@pytest.fixture(scope="module")
def traced_fig3(tmp_path_factory):
    """One traced parallel fig3 CLI run; yields (trace dir, live RunMetrics)."""
    trace_dir = tmp_path_factory.mktemp("fig3-trace")
    with pytest.MonkeyPatch.context() as mp:
        mp.setenv("REPRO_SCALE", "64")
        mp.setenv("REPRO_WORKERS", "2")  # restored even though the CLI overwrites it
        drain_run_log()  # isolate from engine runs earlier in the session
        code = cli.main(["--workers", "2", "--trace", str(trace_dir), "fig3"])
        live_runs = drain_run_log()
    assert code == 0
    assert get_tracer() is NOOP  # the CLI uninstalled its tracer
    return trace_dir, live_runs


class TestTraceRoundTrip:
    def test_manifest_is_reconstructable(self, traced_fig3):
        trace_dir, _ = traced_fig3
        manifest = json.loads((trace_dir / "run.json").read_text())
        assert manifest["label"] == "fig3"
        assert manifest["env"] == {"REPRO_SCALE": "64", "REPRO_WORKERS": "2"}
        assert manifest["executors"] == ["parallel[2]"]
        assert manifest["funnel"]["routed"] == 64
        assert manifest["wall_s"] > 0.0
        assert manifest["n_engine_runs"] == 2  # analyze + fig3:scan
        # probe volumes shipped home from the workers
        assert manifest["meters"]["probes.sent.trinocular"]["value"] > 0

    def test_spans_form_single_rooted_tree(self, traced_fig3):
        trace_dir, _ = traced_fig3
        saved = load_run(trace_dir)
        spans = saved.spans
        ids = [s.span_id for s in spans]
        assert len(set(ids)) == len(ids), "span ids must be unique"
        roots = [s for s in spans if s.parent_id is None]
        assert len(roots) == 1 and roots[0].name == "run"
        id_set = set(ids)
        for span in spans:
            if span.parent_id is not None:
                assert span.parent_id in id_set, f"orphan span {span.name}"
        assert {s.trace_id for s in spans} == {saved.manifest["trace_id"]}

    def test_block_spans_cover_all_tasks_across_workers(self, traced_fig3):
        trace_dir, _ = traced_fig3
        saved = load_run(trace_dir)
        blocks = [s for s in saved.spans if s.name == "block"]
        n_tasks = sum(r["n_tasks"] for r in saved.manifest["runs"])
        assert len(blocks) == n_tasks
        pids = {s.attrs["pid"] for s in blocks}
        assert len(pids) >= 1  # worker pids shipped back across the pool
        campaigns = {s.span_id for s in saved.spans if s.name == "campaign"}
        assert all(b.parent_id in campaigns for b in blocks)
        # the analysis job annotated its spans from inside the workers
        assert any("block" in b.attrs for b in blocks)

    def test_stage_span_walltimes_match_run_metrics(self, traced_fig3):
        trace_dir, _ = traced_fig3
        saved = load_run(trace_dir)
        analyze = next(r for r in saved.runs if r.label.startswith("analyze:"))
        campaign = next(
            s
            for s in saved.spans
            if s.name == "campaign" and s.attrs["label"] == analyze.label
        )
        block_ids = {
            s.span_id for s in saved.spans if s.parent_id == campaign.span_id
        }
        span_wall: dict[str, float] = {}
        span_calls: dict[str, int] = {}
        for s in saved.spans:
            if s.parent_id in block_ids and s.name.startswith("stage:"):
                stage = s.name.removeprefix("stage:")
                span_wall[stage] = span_wall.get(stage, 0.0) + s.wall_s
                span_calls[stage] = span_calls.get(stage, 0) + 1
        assert set(span_wall) == {n for n, t in analyze.stages.items() if t.calls}
        for stage, total in span_wall.items():
            recorded = analyze.stages[stage].wall_s
            assert total == pytest.approx(recorded, rel=0.05, abs=0.1), stage
            assert span_calls[stage] == analyze.stages[stage].calls

    def test_report_matches_live_metrics_output(self, traced_fig3, capsys):
        trace_dir, live_runs = traced_fig3
        assert cli.main(["report", str(trace_dir)]) == 0
        out = capsys.readouterr().out
        assert len(live_runs) == 2
        for live in live_runs:
            assert live.report() in out, f"saved report diverged for {live.label!r}"

    def test_report_on_missing_directory_fails_cleanly(self, tmp_path, capsys):
        assert cli.main(["report", str(tmp_path / "nope")]) == 2
        assert "run.json" in capsys.readouterr().err


class TestTracingDoesNotPerturbResults:
    def test_serial_parallel_byte_identical_with_tracing(self):
        world = covid_world(64, 26, diurnal_boost=2.0)  # the fig3 world
        dataset = "2020it89-match-ejnw"  # two weeks: cheap but real
        untraced = DatasetBuilder(world).analyze(
            dataset, engine=CampaignEngine(SerialExecutor())
        )
        with use_tracer(Tracer()):
            serial = DatasetBuilder(world).analyze(
                dataset, engine=CampaignEngine(SerialExecutor())
            )
        with use_tracer(Tracer()):
            executor = ParallelExecutor(workers=2)
            parallel = DatasetBuilder(world).analyze(
                dataset, engine=CampaignEngine(executor)
            )
        assert executor.fallback_reason is None
        assert list(serial.analyses) == list(untraced.analyses) == list(parallel.analyses)
        for cidr, analysis in untraced.analyses.items():
            reference = pickle.dumps(analysis)
            assert pickle.dumps(serial.analyses[cidr]) == reference
            assert pickle.dumps(parallel.analyses[cidr]) == reference

    def test_cached_traced_runs_byte_identical(self, tmp_path):
        """Cold, warm, and traced-warm cached runs all match the baseline."""
        from repro.runtime import AnalysisCache

        world = covid_world(64, 26, diurnal_boost=2.0)
        dataset = "2020it89-match-ejnw"
        baseline = DatasetBuilder(world).analyze(
            dataset, engine=CampaignEngine(SerialExecutor())
        )
        cold_engine = CampaignEngine(SerialExecutor(), AnalysisCache(tmp_path))
        cold = DatasetBuilder(world).analyze(dataset, engine=cold_engine)
        assert cold.metrics.cache["misses"] == 64
        with use_tracer(Tracer()) as tracer:
            warm_engine = CampaignEngine(
                ParallelExecutor(workers=2), AnalysisCache(tmp_path)
            )
            warm = DatasetBuilder(world).analyze(dataset, engine=warm_engine)
        assert warm.metrics.cache == {"hits": 64, "misses": 0, "stores": 0}
        assert list(warm.analyses) == list(baseline.analyses)
        for cidr, analysis in baseline.analyses.items():
            reference = pickle.dumps(analysis)
            assert pickle.dumps(cold.analyses[cidr]) == reference
            assert pickle.dumps(warm.analyses[cidr]) == reference
        # the traced campaign span advertises its hit count
        campaign_spans = [s for s in tracer.finished if s.name == "campaign"]
        assert any(s.attrs.get("cache_hits") == 64 for s in campaign_spans)

    def test_without_trace_flag_no_files_are_written(self, tmp_path, monkeypatch):
        # engine runs plus --metrics must never write anything to disk
        monkeypatch.chdir(tmp_path)
        engine = CampaignEngine(SerialExecutor())
        engine.run(len, [[1], [2, 2]], label="no-files")
        assert list(tmp_path.iterdir()) == []
