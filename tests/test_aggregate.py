"""Unit tests for geographic aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregate import BlockRecord, GridAggregator
from repro.net.geo import GeoInfo, GridCell


def record(lat, lon, continent="Asia", responsive=True, cs=False, down=(), up=()):
    return BlockRecord(
        geo=GeoInfo(lat=lat, lon=lon, country="X", continent=continent, city="Y"),
        responsive=responsive,
        change_sensitive=cs,
        downward_days=tuple(down),
        upward_days=tuple(up),
    )


def filled_aggregator(n_cs=6, n_plain=4, cell=(30.5, 114.5)) -> GridAggregator:
    agg = GridAggregator()
    lat, lon = cell
    for i in range(n_cs):
        agg.add(record(lat, lon, cs=True, down=(10, 20) if i < 3 else (10,)))
    for _ in range(n_plain):
        agg.add(record(lat, lon))
    return agg


class TestAccumulation:
    def test_groups_by_gridcell(self):
        agg = GridAggregator()
        agg.add(record(30.5, 114.5))
        agg.add(record(31.9, 115.9))
        agg.add(record(32.1, 114.5))  # next cell north
        cells = agg.cells
        assert cells[GridCell(30, 114)].n_responsive == 2
        assert cells[GridCell(32, 114)].n_responsive == 1

    def test_unresponsive_blocks_ignored(self):
        agg = GridAggregator()
        agg.add(record(30.5, 114.5, responsive=False))
        assert not agg.cells

    def test_downward_days_counted_for_cs_only(self):
        agg = GridAggregator()
        agg.add(record(30.5, 114.5, cs=False, down=(5,)))
        agg.add(record(30.5, 114.5, cs=True, down=(5,)))
        stats = agg.cell(GridCell(30, 114))
        assert stats.downward_by_day[5] == 1

    def test_continent_majority(self):
        agg = GridAggregator()
        agg.add(record(30.5, 114.5, continent="Asia"))
        agg.add(record(30.5, 114.5, continent="Asia"))
        agg.add(record(30.5, 114.5, continent="Europe"))
        assert agg.cell(GridCell(30, 114)).continent == "Asia"


class TestCoverage:
    def test_representation_thresholds(self):
        agg = filled_aggregator(n_cs=6, n_plain=4)
        cov = agg.coverage()
        assert cov.n_observed == 1
        assert cov.n_represented == 1

    def test_under_represented_cell(self):
        agg = filled_aggregator(n_cs=3, n_plain=4)
        cov = agg.coverage()
        assert cov.n_observed == 1
        assert cov.n_represented == 0
        assert cov.n_under_represented == 1

    def test_under_observed_cell(self):
        agg = filled_aggregator(n_cs=1, n_plain=1)
        cov = agg.coverage()
        assert cov.n_under_observed == 1

    def test_block_weighted_sums(self):
        agg = filled_aggregator(n_cs=6, n_plain=4)
        agg.add(record(50.5, 10.5, cs=True))  # a lone CS block elsewhere
        cov = agg.coverage()
        assert cov.cs_blocks_total == 7
        assert cov.cs_blocks_represented == 6
        assert cov.cs_block_weighted_coverage == pytest.approx(6 / 7)

    def test_threshold_override(self):
        agg = filled_aggregator(n_cs=3, n_plain=0)
        cov = agg.coverage(min_responsive=3, min_change_sensitive=3)
        assert cov.n_represented == 1


class TestDailySeries:
    def test_cell_daily_fractions(self):
        agg = filled_aggregator(n_cs=6)
        down, up = agg.cell_daily_fractions(GridCell(30, 114), first_day=0, n_days=30)
        assert down[10] == pytest.approx(1.0)  # all six blocks changed day 10
        assert down[20] == pytest.approx(0.5)
        assert down[5] == 0.0
        assert up.sum() == 0.0

    def test_unknown_cell_gives_zeros(self):
        agg = GridAggregator()
        down, up = agg.cell_daily_fractions(GridCell(0, 0), 0, 5)
        assert not down.any() and not up.any()

    def test_continent_fractions(self):
        agg = GridAggregator()
        for _ in range(5):
            agg.add(record(30.5, 114.5, continent="Asia", cs=True, down=(3,)))
        for _ in range(5):
            agg.add(record(50.5, 10.5, continent="Europe", cs=True, down=(7,)))
        series = agg.continent_daily_fractions(0, 10, represented_only=False)
        assert series["Asia"][3] == pytest.approx(1.0)
        assert series["Asia"][7] == 0.0
        assert series["Europe"][7] == pytest.approx(1.0)

    def test_represented_only_filter(self):
        agg = GridAggregator()
        agg.add(record(30.5, 114.5, continent="Asia", cs=True, down=(3,)))
        series = agg.continent_daily_fractions(0, 10, represented_only=True)
        assert "Asia" not in series  # single-block cell is not represented

    def test_out_of_range_days_dropped(self):
        agg = filled_aggregator()
        down, _ = agg.cell_daily_fractions(GridCell(30, 114), first_day=15, n_days=10)
        assert down[5] == pytest.approx(0.5)  # day 20
        assert down.size == 10
