"""Unit tests for diurnality, swing, and change-sensitivity classification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.diurnal import DiurnalTest
from repro.core.sensitivity import SensitivityClassifier
from repro.core.swing import SwingTest
from repro.timeseries.series import SECONDS_PER_DAY, TimeSeries


def hourly(values):
    values = np.asarray(values, dtype=float)
    return TimeSeries(np.arange(values.size) * 3600.0, values)


def diurnal_counts(n_days=14, amplitude=10.0, base=2.0, workweek=False):
    t = np.arange(24 * n_days)
    day = t // 24
    wave = np.maximum(np.sin(2 * np.pi * (t % 24) / 24.0), 0.0)
    values = base + amplitude * wave
    if workweek:
        weekend = (day % 7 >= 5)
        values = np.where(weekend, base, values)
    return hourly(values)


class TestDiurnalTest:
    def test_accepts_daily_cycle(self):
        verdict = DiurnalTest().evaluate(diurnal_counts())
        assert verdict.is_diurnal
        assert verdict.energy_ratio > 0.5

    def test_accepts_workweek_gated_cycle(self):
        verdict = DiurnalTest().evaluate(diurnal_counts(workweek=True))
        assert verdict.is_diurnal

    def test_rejects_flat_series(self):
        verdict = DiurnalTest().evaluate(hourly(np.full(24 * 14, 5.0)))
        assert not verdict.is_diurnal
        assert verdict.energy_ratio == 0.0

    def test_rejects_white_noise(self):
        rng = np.random.default_rng(0)
        verdict = DiurnalTest().evaluate(hourly(rng.normal(10, 2, 24 * 28)))
        assert not verdict.is_diurnal

    def test_rejects_too_short_observation(self):
        verdict = DiurnalTest(min_days=3).evaluate(diurnal_counts(n_days=2))
        assert not verdict.is_diurnal
        assert verdict.n_days < 3

    def test_nan_prefix_tolerated(self):
        ts = diurnal_counts()
        values = ts.values.copy()
        values[:24] = np.nan
        verdict = DiurnalTest().evaluate(ts.with_values(values))
        assert verdict.is_diurnal


class TestSwingTest:
    def test_wide_daily_swing_detected(self):
        profile = SwingTest().evaluate(diurnal_counts(amplitude=10))
        assert profile.is_wide
        assert profile.max_swing >= 5.0

    def test_narrow_swing_rejected(self):
        profile = SwingTest().evaluate(diurnal_counts(amplitude=3))
        assert not profile.is_wide

    def test_four_of_seven_rule_tolerates_long_weekends(self):
        # wide Mon-Thu only (4 of 7 days)
        t = np.arange(24 * 21)
        day = t // 24
        wave = 8.0 * np.maximum(np.sin(2 * np.pi * (t % 24) / 24.0), 0)
        values = np.where(day % 7 < 4, 2 + wave, 2.0)
        profile = SwingTest().evaluate(hourly(values))
        assert profile.is_wide

    def test_three_wide_days_per_week_insufficient(self):
        t = np.arange(24 * 21)
        day = t // 24
        wave = 8.0 * np.maximum(np.sin(2 * np.pi * (t % 24) / 24.0), 0)
        values = np.where(day % 7 < 3, 2 + wave, 2.0)
        profile = SwingTest().evaluate(hourly(values))
        assert not profile.is_wide

    def test_one_wide_week_suffices(self):
        # quiet three weeks, one active week
        t = np.arange(24 * 28)
        day = t // 24
        wave = 8.0 * np.maximum(np.sin(2 * np.pi * (t % 24) / 24.0), 0)
        values = np.where((day >= 7) & (day < 14), 2 + wave, 2.0)
        profile = SwingTest().evaluate(hourly(values))
        assert profile.is_wide

    def test_empty_series(self):
        profile = SwingTest().evaluate(TimeSeries(np.array([]), np.array([])))
        assert not profile.is_wide

    def test_gap_days_count_against_window(self):
        # 4 wide days, then a long gap: the dense-axis window must see the gap
        times = np.concatenate(
            [np.arange(24 * 4) * 3600.0, 20 * SECONDS_PER_DAY + np.arange(24) * 3600.0]
        )
        t = np.arange(24 * 4)
        wave = 8.0 * np.maximum(np.sin(2 * np.pi * (t % 24) / 24.0), 0)
        values = np.concatenate([2 + wave, np.full(24, 2.0)])
        profile = SwingTest().evaluate(TimeSeries(times, values))
        assert profile.is_wide  # 4 wide days within the first 7-day window


class TestSensitivityClassifier:
    def test_change_sensitive_block(self):
        cls = SensitivityClassifier().classify(diurnal_counts(amplitude=12))
        assert cls.responsive
        assert cls.is_diurnal
        assert cls.is_wide_swing
        assert cls.is_change_sensitive
        assert cls.funnel_row == "change-sensitive"

    def test_unresponsive_block(self):
        cls = SensitivityClassifier().classify(hourly(np.zeros(24 * 14)))
        assert not cls.responsive
        assert cls.funnel_row == "not responsive"

    def test_all_nan_is_unresponsive(self):
        cls = SensitivityClassifier().classify(hourly(np.full(24 * 7, np.nan)))
        assert not cls.responsive

    def test_diurnal_but_narrow_is_not_sensitive(self):
        cls = SensitivityClassifier().classify(diurnal_counts(amplitude=3))
        assert cls.is_diurnal
        assert not cls.is_change_sensitive
        assert cls.funnel_row == "not change-sensitive"

    def test_wide_but_not_diurnal_is_not_sensitive(self):
        # one random-level jump per day at a uniformly random hour: daily
        # swings are wide, but jump phases are random so no diurnal line
        rng = np.random.default_rng(1)
        days = []
        level = 20.0
        for _ in range(28):
            hour = int(rng.integers(0, 24))
            new = float(rng.integers(0, 40))
            day = np.full(24, level)
            day[hour:] = new
            level = new
            days.append(day)
        cls = SensitivityClassifier().classify(hourly(np.concatenate(days)))
        assert cls.is_wide_swing
        assert not cls.is_diurnal
        assert not cls.is_change_sensitive

    def test_servers_not_change_sensitive(self):
        cls = SensitivityClassifier().classify(hourly(np.full(24 * 14, 250.0)))
        assert cls.responsive
        assert not cls.is_change_sensitive
