"""Deeper coverage of the time-series substrate's parameters."""

from __future__ import annotations

import doctest

import numpy as np
import pytest

from repro.timeseries.detect import detect_cusum
from repro.timeseries.stl import stl_decompose


def diurnal(n_days=14, seed=0, noise=0.2):
    rng = np.random.default_rng(seed)
    t = np.arange(24 * n_days)
    return 10 + 4 * np.sin(2 * np.pi * t / 24) + rng.normal(0, noise, t.size)


class TestStlParameters:
    def test_trend_smoother_override_smooths_more(self):
        y = diurnal(28)
        y[24 * 14 :] -= 5.0
        sharp = stl_decompose(y, 24, trend_smoother=25).trend
        smooth = stl_decompose(y, 24, trend_smoother=401).trend
        # a larger trend window spreads the step over more samples
        sharp_step = np.abs(np.diff(sharp)).max()
        smooth_step = np.abs(np.diff(smooth)).max()
        assert smooth_step < sharp_step

    def test_low_pass_override_accepted(self):
        res = stl_decompose(diurnal(), 24, low_pass_smoother=31)
        assert np.isfinite(res.trend).all()

    def test_more_inner_iterations_converge(self):
        y = diurnal()
        one = stl_decompose(y, 24, inner_iterations=1, outer_iterations=0)
        five = stl_decompose(y, 24, inner_iterations=5, outer_iterations=0)
        # both decompose exactly; the seasonal estimates stay close
        assert np.abs(one.seasonal - five.seasonal).mean() < 0.5

    def test_zero_outer_iterations_unit_weights(self):
        res = stl_decompose(diurnal(), 24, outer_iterations=0)
        assert np.all(res.robustness_weights == 1.0)

    def test_seasonal_smoother_loess_vs_periodic(self):
        y = diurnal(noise=0.05)
        periodic = stl_decompose(y, 24, seasonal_smoother=None)
        loess = stl_decompose(y, 24, seasonal_smoother=11)
        # similar seasonal shapes on a stationary cycle
        inner = slice(48, -48)
        r = np.corrcoef(periodic.seasonal[inner], loess.seasonal[inner])[0, 1]
        assert r > 0.98


class TestCusumEndings:
    def test_without_ending_estimation_end_is_alarm(self):
        y = np.concatenate([np.zeros(100), np.full(100, -3.0)])
        result = detect_cusum(y, 1.0, 0.01, estimate_ending=False)
        for alarm in result.alarms:
            assert alarm.end == alarm.alarm

    def test_with_ending_estimation_end_extends(self):
        rng = np.random.default_rng(4)
        ramp = np.concatenate([np.zeros(100), np.linspace(0, -4, 40), np.full(100, -4.0)])
        y = ramp + rng.normal(0, 0.05, ramp.size)
        result = detect_cusum(y, 1.0, 0.01, estimate_ending=True)
        down = result.downward
        assert down
        assert any(a.end > a.alarm for a in down)


class TestDoctests:
    def test_addresses_doctests(self):
        import repro.net.addresses as module

        failures, _ = doctest.testmod(module)
        assert failures == 0
