"""ResourceSanitizer: the dynamic oracle behind REP006.

Leak-injection suite: acquire real segments / pools / spill dirs,
deliberately withhold the release, and assert the sanitizer sees them;
then release and assert the registry drains.  Every resource acquired
here IS released before the test returns, so the suite stays clean
under its own instrumentation (``REPRO_SANITIZE=1`` runs these tests
with the session-wide sanitizer installed as well — the local one
stacks on top and unwinds LIFO).
"""

from __future__ import annotations

import gc

import numpy as np
import pytest

from repro.lint.sanitizer import (
    ResourceLeakError,
    ResourceSanitizer,
    _pool_name,
    get_sanitizer,
    install_if_enabled,
)
from repro.runtime import shm as shm_mod
from repro.runtime.executors import SharedMemoryExecutor
from repro.runtime.shm import SharedArrayPool
from repro.runtime.spill import SpillDir


@pytest.fixture()
def sanitizer():
    san = ResourceSanitizer()
    san.install()
    yield san
    san.uninstall()


def test_segment_leak_is_tracked_until_released(sanitizer):
    pool = SharedArrayPool()
    pool.publish(np.arange(8, dtype=np.float64))
    live = sanitizer.live("shm-segment")
    assert [r.name for r in live] == list(pool.created)
    assert "shm.py:" in live[0].created_at  # the acquiring frame

    with pytest.raises(ResourceLeakError, match="shm-segment"):
        sanitizer.assert_clean("the test boundary")

    pool.release()
    assert sanitizer.live("shm-segment") == []
    sanitizer.assert_clean()


def test_finalizer_safety_net_also_unregisters(sanitizer):
    pool = SharedArrayPool()
    pool.publish(np.arange(4, dtype=np.float64))
    assert sanitizer.live("shm-segment")
    del pool  # no explicit release: the GC finalizer must drain it
    gc.collect()
    assert sanitizer.live("shm-segment") == []


def test_spill_dir_tracked_and_drained_by_cleanup(sanitizer):
    spill = SpillDir.create()
    assert [r.name for r in sanitizer.live("spill-dir")] == [str(spill.directory)]
    spill.cleanup()
    assert sanitizer.live("spill-dir") == []


def test_persistent_pool_tracked_across_ensure_and_teardown(sanitizer):
    executor = SharedMemoryExecutor(workers=2)
    pool = executor._ensure_pool()
    assert pool is not None
    assert [r.name for r in sanitizer.live("process-pool")] == [_pool_name(pool)]
    # re-ensuring the same pool must not double-register
    assert executor._ensure_pool() is pool
    assert len(sanitizer.live("process-pool")) == 1
    executor.close()
    assert sanitizer.live("process-pool") == []


def test_engine_close_boundary_flags_a_live_pool(sanitizer):
    class _Executor:
        def __init__(self) -> None:
            self._pool = object()
            self.last_segments: list[str] = []

    executor = _Executor()
    sanitizer.register("process-pool", _pool_name(executor._pool))
    with pytest.raises(ResourceLeakError, match="engine close"):
        sanitizer.check_engine_close(executor)
    sanitizer.unregister("process-pool", _pool_name(executor._pool))
    sanitizer.check_engine_close(executor)  # clean now


def test_engine_close_boundary_flags_leaked_last_segments(sanitizer):
    class _Executor:
        _pool = None
        last_segments = ["repro_shm_fixture_0"]

    sanitizer.register("shm-segment", "repro_shm_fixture_0")
    with pytest.raises(ResourceLeakError, match="repro_shm_fixture_0"):
        sanitizer.check_engine_close(_Executor())
    sanitizer.unregister("shm-segment", "repro_shm_fixture_0")
    sanitizer.check_engine_close(_Executor())


def test_uninstall_restores_the_original_methods():
    before = SharedArrayPool.__dict__["_new_segment"]
    san = ResourceSanitizer()
    san.install()
    assert SharedArrayPool.__dict__["_new_segment"] is not before
    san.uninstall()
    assert SharedArrayPool.__dict__["_new_segment"] is before
    assert shm_mod.SharedArrayPool._new_segment is before


def test_install_is_idempotent():
    san = ResourceSanitizer()
    san.install()
    patched = SharedArrayPool.__dict__["_new_segment"]
    san.install()  # second install must not stack another wrapper
    assert SharedArrayPool.__dict__["_new_segment"] is patched
    san.uninstall()


def test_install_if_enabled_respects_the_knob(monkeypatch):
    from repro.runtime import envconfig

    session_wide = get_sanitizer()
    if session_wide.installed:
        pytest.skip("session-wide sanitizer active (REPRO_SANITIZE=1 run)")
    with envconfig.overriding("REPRO_SANITIZE", "0"):
        assert install_if_enabled() is False
    assert not session_wide.installed
