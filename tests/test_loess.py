"""Unit tests for the LOESS smoother."""

from __future__ import annotations

import numpy as np
import pytest

from repro.timeseries.loess import loess_smooth, tricube


class TestTricube:
    def test_peak_at_zero(self):
        assert tricube(np.array([0.0]))[0] == pytest.approx(1.0)

    def test_vanishes_outside_unit_interval(self):
        assert tricube(np.array([1.0, 2.0, -3.0])).max() == pytest.approx(0.0)

    def test_symmetric(self):
        u = np.array([0.3, 0.7])
        assert np.allclose(tricube(u), tricube(-u))


class TestLoess:
    def test_recovers_linear_function_exactly(self):
        x = np.linspace(0, 10, 50)
        y = 3.0 * x + 2.0
        smoothed = loess_smooth(x, y, q=15, degree=1)
        assert np.allclose(smoothed, y, atol=1e-8)

    def test_degree_zero_recovers_constant(self):
        x = np.arange(30, dtype=float)
        y = np.full(30, 4.2)
        assert np.allclose(loess_smooth(x, y, q=7, degree=0), 4.2)

    def test_smooths_noise(self):
        rng = np.random.default_rng(1)
        x = np.arange(200, dtype=float)
        y = np.sin(x / 30) + rng.normal(0, 0.5, 200)
        smoothed = loess_smooth(x, y, q=41)
        resid = smoothed - np.sin(x / 30)
        assert np.abs(resid[20:-20]).max() < 0.4

    def test_xout_evaluation(self):
        x = np.arange(20, dtype=float)
        y = 2.0 * x
        out = loess_smooth(x, y, q=8, xout=np.array([5.5, 10.25]))
        assert out == pytest.approx([11.0, 20.5], abs=1e-6)

    def test_robustness_weights_downweight_outliers(self):
        x = np.arange(50, dtype=float)
        y = np.ones(50)
        y[25] = 100.0
        rw = np.ones(50)
        rw[25] = 1e-9
        smoothed = loess_smooth(x, y, q=11, robustness_weights=rw)
        assert abs(smoothed[25] - 1.0) < 0.01

    def test_uniform_fast_path_matches_general_path(self):
        rng = np.random.default_rng(2)
        n = 300
        x = np.arange(n, dtype=float)
        y = rng.normal(0, 1, n) + np.cos(x / 25)
        rw = rng.uniform(0.1, 1.0, n)
        fast = loess_smooth(x, y, q=31, robustness_weights=rw)
        # break uniformity minimally to force the general path
        x2 = x.copy()
        x2[0] -= 1e-7
        slow = loess_smooth(x2, y, q=31, robustness_weights=rw)
        assert np.allclose(fast, slow, atol=1e-4)

    def test_q_larger_than_n_degrades_to_global_fit(self):
        x = np.arange(10, dtype=float)
        y = 1.5 * x + 1.0
        smoothed = loess_smooth(x, y, q=100)
        assert np.allclose(smoothed, y, atol=1e-6)

    def test_rejects_mismatched_inputs(self):
        with pytest.raises(ValueError):
            loess_smooth(np.arange(5.0), np.arange(4.0), q=3)

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError, match="degree"):
            loess_smooth(np.arange(5.0), np.arange(5.0), q=3, degree=2)

    def test_empty_input(self):
        out = loess_smooth(np.array([]), np.array([]), q=3)
        assert out.size == 0
