"""``repro lint``: rules, driver mechanics, CLI, and the real tree.

Each rule gets at least one violating and one clean fixture from
``tests/lint_fixtures/``, installed into a synthetic repository under
``tmp_path`` so the checks run against exactly the snippet under test.
The suite also pins the meta-invariants: the real tree lints clean with
an empty baseline and zero suppressions, and deleting an oracle's
equivalence test (or the oracle itself) turns REP001 red.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    Violation,
    all_rules,
    build_context,
    default_baseline_path,
    find_root,
    run_lint,
)
from repro.lint.cli import main as lint_main
from repro.lint.registry import register
from repro.lint.report import render_json, render_text
from repro.lint.rules.cachekey import write_fingerprint

FIXTURES = Path(__file__).parent / "lint_fixtures"
REAL_ROOT = find_root(Path(__file__).parent)


def fixture(name: str) -> str:
    return (FIXTURES / name).read_text(encoding="utf-8")


def make_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    """Write a synthetic repository and return its root."""
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
    return tmp_path


def lint_rule(root: Path, rule: str) -> list[Violation]:
    return run_lint(root, rule_ids=[rule]).violations


# ---------------------------------------------------------------------------
# the registry is the single source of truth


RULE_IDS = [
    "REP001",
    "REP002",
    "REP003",
    "REP004",
    "REP005",
    "REP006",
    "REP007",
    "REP008",
]


def test_registry_ships_the_eight_documented_rules():
    rules = all_rules()
    assert [r.id for r in rules] == RULE_IDS
    assert all(r.summary for r in rules)
    assert len({r.name for r in rules}) == len(rules)


def test_duplicate_rule_id_is_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        register("REP001", "imposter", "second registration of a taken id")(
            lambda ctx: []
        )


# ---------------------------------------------------------------------------
# REP001 oracle pairing


def _rep001_tree(tmp_path, suite_fixture):
    return make_tree(
        tmp_path,
        {
            "src/repro/kernels.py": fixture("rep001_kernels.py"),
            "tests/test_kernels.py": fixture(suite_fixture),
        },
    )


def test_rep001_flags_orphaned_oracle(tmp_path):
    root = _rep001_tree(tmp_path, "rep001_kernel_suite_bad.py")
    violations = lint_rule(root, "REP001")
    assert len(violations) == 1
    assert violations[0].path == "src/repro/kernels.py"
    assert "frobnicate_reference" in violations[0].message


def test_rep001_clean_when_twins_are_co_tested(tmp_path):
    root = _rep001_tree(tmp_path, "rep001_kernel_suite_clean.py")
    assert lint_rule(root, "REP001") == []


def test_rep001_flags_missing_kernel_test_module(tmp_path):
    root = make_tree(
        tmp_path, {"src/repro/kernels.py": fixture("rep001_kernels.py")}
    )
    violations = lint_rule(root, "REP001")
    assert len(violations) == 1
    assert "tests/test_kernels.py is missing" in violations[0].message


# ---------------------------------------------------------------------------
# REP002 determinism


def test_rep002_flags_global_rng_wallclock_and_hash(tmp_path):
    root = make_tree(
        tmp_path, {"src/repro/core/noise.py": fixture("rep002_bad.py")}
    )
    messages = " | ".join(v.message for v in lint_rule(root, "REP002"))
    assert "numpy.random.normal" in messages
    assert "random.choice" in messages
    assert "time.time()" in messages
    assert "datetime.now()" in messages
    assert "hash()" in messages


def test_rep002_accepts_passed_in_generators(tmp_path):
    root = make_tree(
        tmp_path, {"src/repro/core/noise.py": fixture("rep002_clean.py")}
    )
    assert lint_rule(root, "REP002") == []


def test_rep002_ignores_telemetry_packages(tmp_path):
    root = make_tree(
        tmp_path, {"src/repro/obs/clock.py": fixture("rep002_bad.py")}
    )
    assert lint_rule(root, "REP002") == []


# ---------------------------------------------------------------------------
# REP003 picklability


def test_rep003_flags_unpicklable_job_state(tmp_path):
    root = make_tree(
        tmp_path, {"src/repro/runtime/myjobs.py": fixture("rep003_bad.py")}
    )
    violations = lint_rule(root, "REP003")
    messages = " | ".join(v.message for v in violations)
    assert len(violations) == 4
    assert "lambda" in messages
    assert "nested function 'helper'" in messages
    assert "an open file handle" in messages


def test_rep003_clean_job_passes(tmp_path):
    root = make_tree(
        tmp_path, {"src/repro/runtime/myjobs.py": fixture("rep003_clean.py")}
    )
    assert lint_rule(root, "REP003") == []


def test_rep003_flags_live_shm_captures(tmp_path):
    root = make_tree(
        tmp_path, {"src/repro/runtime/myjobs.py": fixture("rep003_shm_bad.py")}
    )
    violations = lint_rule(root, "REP003")
    messages = " | ".join(v.message for v in violations)
    assert len(violations) == 4
    assert messages.count("a live SharedMemory handle") == 2  # bare + dotted
    assert "a memoryview" in messages
    assert "a shared-memory buffer ('.buf')" in messages


def test_rep003_descriptor_carrying_job_is_clean(tmp_path):
    root = make_tree(
        tmp_path, {"src/repro/runtime/myjobs.py": fixture("rep003_shm_clean.py")}
    )
    assert lint_rule(root, "REP003") == []


# ---------------------------------------------------------------------------
# REP004 cache-key completeness + schema fingerprint


def _rep004_run(root):
    # record a fingerprint first so only field-coverage findings remain
    write_fingerprint(build_context(root))
    return lint_rule(root, "REP004")


def test_rep004_flags_missing_field(tmp_path):
    root = make_tree(
        tmp_path, {"src/repro/runtime/specs.py": fixture("rep004_bad.py")}
    )
    violations = _rep004_run(root)
    assert len(violations) == 1
    assert "WindowSpec.cache_key" in violations[0].message
    assert "'threshold'" in violations[0].message


def test_rep004_clean_when_every_field_is_covered(tmp_path):
    root = make_tree(
        tmp_path, {"src/repro/runtime/specs.py": fixture("rep004_clean.py")}
    )
    assert _rep004_run(root) == []


CACHE_V1 = '''
CACHE_SCHEMA = 1


def stable_token(obj):
    return repr(obj)


def task_key(kind, inputs):
    return stable_token((kind, CACHE_SCHEMA, inputs))
'''


def test_rep004_requires_schema_bump_for_token_code_edits(tmp_path):
    root = make_tree(tmp_path, {"src/repro/runtime/cache.py": CACHE_V1})
    violations = lint_rule(root, "REP004")
    assert len(violations) == 1
    assert "no recorded cache fingerprint" in violations[0].message

    write_fingerprint(build_context(root))
    assert lint_rule(root, "REP004") == []

    # edit token-shaping code without bumping the schema: violation
    edited = CACHE_V1.replace("repr(obj)", "repr((type(obj).__name__, obj))")
    make_tree(root, {"src/repro/runtime/cache.py": edited})
    violations = lint_rule(root, "REP004")
    assert len(violations) == 1
    assert "CACHE_SCHEMA bump" in violations[0].message
    assert "stable_token" in violations[0].message

    # bump the schema: the recorded fingerprint is stale until re-recorded
    bumped = edited.replace("CACHE_SCHEMA = 1", "CACHE_SCHEMA = 2")
    make_tree(root, {"src/repro/runtime/cache.py": bumped})
    violations = lint_rule(root, "REP004")
    assert len(violations) == 1
    assert "stale" in violations[0].message

    write_fingerprint(build_context(root))
    assert lint_rule(root, "REP004") == []


def test_rep004_docstring_edits_do_not_change_the_fingerprint(tmp_path):
    root = make_tree(tmp_path, {"src/repro/runtime/cache.py": CACHE_V1})
    write_fingerprint(build_context(root))
    documented = CACHE_V1.replace(
        "def stable_token(obj):",
        'def stable_token(obj):\n    """Canonical string for obj."""',
    )
    make_tree(root, {"src/repro/runtime/cache.py": documented})
    assert lint_rule(root, "REP004") == []


# ---------------------------------------------------------------------------
# REP005 metrics hygiene


def _rep005_tree(tmp_path, module_fixture):
    return make_tree(
        tmp_path,
        {
            "src/repro/obs/names.py": fixture("rep005_names.py"),
            "src/repro/core/instrumented.py": fixture(module_fixture),
        },
    )


def test_rep005_flags_fstring_typo_and_bad_family(tmp_path):
    root = _rep005_tree(tmp_path, "rep005_bad.py")
    violations = lint_rule(root, "REP005")
    site = [v for v in violations if v.path.endswith("instrumented.py")]
    messages = " | ".join(v.message for v in site)
    assert len(site) == 3
    assert "must be a literal" in messages
    assert "'engine.taks'" in messages
    assert "family 'latency'" in messages
    # the bad module uses none of the registered names: all flagged stale
    stale = [v for v in violations if v.path.endswith("names.py")]
    assert {m.split("'")[1] for m in (v.message for v in stale)} == {
        "cache.hit",
        "engine.tasks",
        "funnel",
    }


def test_rep005_clean_registered_names_pass(tmp_path):
    root = _rep005_tree(tmp_path, "rep005_clean.py")
    assert lint_rule(root, "REP005") == []


# ---------------------------------------------------------------------------
# REP006 resource lifecycle


def test_rep006_flags_leaks_on_every_path_shape(tmp_path):
    root = make_tree(
        tmp_path, {"src/repro/runtime/leaky.py": fixture("rep006_bad.py")}
    )
    violations = lint_rule(root, "REP006")
    messages = " | ".join(v.message for v in violations)
    assert len(violations) == 4
    assert "acquired and dropped without a handle" in messages
    assert "may leak on an exception edge" in messages
    assert "never released on this path" in messages
    assert "Holder has no lifecycle method" in messages


def test_rep006_protected_acquisitions_pass(tmp_path):
    root = make_tree(
        tmp_path, {"src/repro/runtime/managed.py": fixture("rep006_clean.py")}
    )
    assert lint_rule(root, "REP006") == []


# ---------------------------------------------------------------------------
# REP007 import layering


def _rep007_tree(tmp_path, files):
    base = {"src/repro/runtime/engine.py": fixture("rep007_engine.py")}
    base.update(files)
    return make_tree(tmp_path, base)


def test_rep007_flags_layering_cycles_and_missing_symbols(tmp_path):
    root = _rep007_tree(
        tmp_path,
        {
            "src/repro/timeseries/windows.py": fixture("rep007_bad_timeseries.py"),
            "src/repro/core/cycle_a.py": fixture("rep007_cycle_a.py"),
            "src/repro/core/cycle_b.py": fixture("rep007_cycle_b.py"),
            "src/repro/core/user.py": fixture("rep007_bad_symbol.py"),
        },
    )
    violations = lint_rule(root, "REP007")
    messages = " | ".join(v.message for v in violations)
    assert len(violations) == 3
    assert (
        "package 'timeseries' may not import package 'runtime'" in messages
    )
    assert "module-level import cycle" in messages
    assert "repro.core.cycle_a" in messages and "repro.core.cycle_b" in messages
    assert (
        "from repro.timeseries.windows import not_a_symbol" in messages
    )


def test_rep007_clean_layered_tree_passes(tmp_path):
    root = _rep007_tree(
        tmp_path,
        {
            "src/repro/timeseries/windows.py": fixture("rep007_clean_timeseries.py"),
            "src/repro/core/user.py": fixture("rep007_clean_core.py"),
        },
    )
    assert lint_rule(root, "REP007") == []


def test_rep007_real_tree_has_no_import_cycles():
    """Regression guard: the shipped layer map admits no cycle."""
    context = build_context(REAL_ROOT)
    assert list(context.project.cycles()) == []


# ---------------------------------------------------------------------------
# REP008 env boundary


def test_rep008_flags_every_raw_environment_access(tmp_path):
    root = make_tree(
        tmp_path, {"src/repro/core/config.py": fixture("rep008_bad.py")}
    )
    violations = lint_rule(root, "REP008")
    messages = " | ".join(v.message for v in violations)
    assert len(violations) == 5
    assert "os.environ" in messages
    assert "os.getenv" in messages
    assert "register the knob in repro.runtime.envconfig" in messages


def test_rep008_resolver_module_is_exempt(tmp_path):
    root = make_tree(
        tmp_path, {"src/repro/runtime/envconfig.py": fixture("rep008_bad.py")}
    )
    assert lint_rule(root, "REP008") == []


def test_rep008_resolver_users_pass(tmp_path):
    root = make_tree(
        tmp_path, {"src/repro/core/config.py": fixture("rep008_clean.py")}
    )
    assert lint_rule(root, "REP008") == []


# ---------------------------------------------------------------------------
# driver mechanics: suppressions, baseline, parse errors


SUPPRESSED = """
import time


def stamp():
    return time.time()  # repro-lint: disable=REP002


def stamp_next():
    # repro-lint: disable-next-line=REP002
    return time.time()


def stamp_all():
    return time.time()  # repro-lint: disable=all
"""


def test_per_line_suppressions_are_honored_and_counted(tmp_path):
    root = make_tree(tmp_path, {"src/repro/core/clock.py": SUPPRESSED})
    result = run_lint(root, rule_ids=["REP002"])
    assert result.violations == []
    assert result.suppressed == 3
    assert result.exit_code == 0


def test_suppression_for_another_rule_does_not_apply(tmp_path):
    text = SUPPRESSED.replace("disable=REP002", "disable=REP001")
    root = make_tree(tmp_path, {"src/repro/core/clock.py": text})
    result = run_lint(root, rule_ids=["REP002"])
    assert len(result.violations) == 1
    assert result.suppressed == 2


def test_baseline_covers_known_findings(tmp_path):
    root = make_tree(
        tmp_path, {"src/repro/core/noise.py": fixture("rep002_bad.py")}
    )
    found = run_lint(root, rule_ids=["REP002"]).violations
    assert found
    baseline = Baseline.from_violations(found)
    result = run_lint(root, rule_ids=["REP002"], baseline=baseline)
    assert result.violations == []
    assert result.baselined == len(found)

    # round-trip through disk
    path = default_baseline_path(root)
    baseline.save(path)
    reloaded = Baseline.load(path)
    assert reloaded.entries == baseline.entries


def test_syntax_errors_surface_as_parse_findings(tmp_path):
    root = make_tree(tmp_path, {"src/repro/broken.py": "def oops(:\n"})
    result = run_lint(root, rule_ids=["REP002"])
    assert [v.rule for v in result.violations] == ["PARSE"]
    assert result.exit_code == 1


def test_unknown_rule_id_raises(tmp_path):
    root = make_tree(tmp_path, {"src/repro/empty.py": ""})
    with pytest.raises(KeyError, match="REP999"):
        run_lint(root, rule_ids=["REP999"])


# ---------------------------------------------------------------------------
# reporting


def test_reports_render_both_formats(tmp_path):
    root = make_tree(
        tmp_path, {"src/repro/core/noise.py": fixture("rep002_bad.py")}
    )
    result = run_lint(root, rule_ids=["REP002"])
    text = render_text(result)
    assert "src/repro/core/noise.py" in text
    assert "REP002" in text.splitlines()[-1]

    payload = json.loads(render_json(result))
    assert payload["exit_code"] == 1
    assert payload["violations"]
    assert {v["rule"] for v in payload["violations"]} == {"REP002"}
    assert [r["id"] for r in payload["rules"]] == ["REP002"]


# ---------------------------------------------------------------------------
# CLI


def test_cli_lists_every_rule_in_help(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.id in out
        assert rule.summary.split()[0] in out
    assert "disable-next-line" in out  # suppression syntax is documented


def test_cli_json_artifact_round_trips(tmp_path, capsys):
    out_file = tmp_path / "lint.json"
    code = lint_main(
        ["--root", str(REAL_ROOT), "--format", "json", "--output", str(out_file)]
    )
    payload = json.loads(out_file.read_text())
    assert code == payload["exit_code"] == 0
    assert [r["id"] for r in payload["rules"]] == RULE_IDS


def test_cli_exit_codes(tmp_path, capsys):
    make_tree(tmp_path, {"src/repro/core/noise.py": fixture("rep002_bad.py")})
    assert lint_main(["--root", str(tmp_path), "--rules", "REP002"]) == 1
    assert lint_main(["--root", str(tmp_path), "--rules", "BOGUS"]) == 2
    capsys.readouterr()


def test_cli_update_baseline_then_clean(tmp_path, capsys):
    make_tree(tmp_path, {"src/repro/core/noise.py": fixture("rep002_bad.py")})
    assert (
        lint_main(["--root", str(tmp_path), "--rules", "REP002", "--update-baseline"])
        == 0
    )
    assert lint_main(["--root", str(tmp_path), "--rules", "REP002"]) == 0
    assert lint_main(["--root", str(tmp_path), "--rules", "REP002", "--no-baseline"]) == 1
    capsys.readouterr()


def test_repro_cli_delegates_lint(capsys):
    from repro.cli import main as repro_main

    assert repro_main(["lint", "--list-rules"]) == 0
    assert "REP001" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# the real tree


def test_real_tree_lints_clean_with_no_suppressions():
    baseline = Baseline.load(default_baseline_path(REAL_ROOT))
    assert len(baseline) == 0  # the shipped baseline must stay empty
    result = run_lint(REAL_ROOT, baseline=baseline)
    assert result.violations == []
    assert result.suppressed == 0
    assert result.baselined == 0
    assert result.exit_code == 0


def test_real_tree_rep001_notices_a_deleted_equivalence_test(tmp_path):
    """Deleting an oracle's test from the real suite must turn REP001 red."""
    import shutil

    root = tmp_path / "tree"
    (root / "src").parent.mkdir(parents=True, exist_ok=True)
    shutil.copytree(REAL_ROOT / "src" / "repro", root / "src" / "repro")
    tests_dir = root / "tests"
    tests_dir.mkdir()
    real_suite = (REAL_ROOT / "tests" / "test_kernels.py").read_text()
    # sever every reference to the batched periodogram while keeping the
    # kernel pair itself: the equivalence coverage is gone
    assert "periodogram_batch" in real_suite
    pruned = real_suite.replace("periodogram_batch", "periodogram_batch_gone")
    (tests_dir / "test_kernels.py").write_text(pruned)
    violations = lint_rule(root, "REP001")
    assert any("'periodogram_batch'" in v.message for v in violations)
