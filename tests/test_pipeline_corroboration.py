"""Integration test: pipeline outage corroboration (§2.6 cross-check)."""

from __future__ import annotations

from datetime import datetime

import numpy as np

from repro.core.pipeline import BlockPipeline
from repro.net.events import Calendar, Outage
from repro.net.prober import TrinocularObserver, probe_order
from repro.net.usage import DynamicPoolUsage, round_grid

EPOCH = datetime(2020, 1, 1)


def _analyze(corroborate: bool, seed: int = 81):
    calendar = Calendar(
        epoch=EPOCH,
        tz_hours=0.0,
        # a 30-hour outage mid-month: long enough for unpaired alarms
        events=(Outage(start_s=14 * 86_400.0, end_s=14 * 86_400.0 + 30 * 3600.0),),
    )
    usage = DynamicPoolUsage(pool_size=48, peak=0.8, trough=0.1, quiet_week_probability=0.0)
    truth = usage.generate(np.random.default_rng(seed), round_grid(28 * 86_400.0), calendar)
    order = probe_order(truth.n_addresses, seed)
    logs = [
        TrinocularObserver(name, phase_offset_s=97.0 * (i + 1)).observe(
            truth, order, rng=np.random.default_rng([seed, i])
        )
        for i, name in enumerate("ejnw")
    ]
    pipeline = BlockPipeline(detect_on_all=True, corroborate_outages=corroborate)
    return pipeline.analyze(logs, truth.addresses)


class TestPipelineCorroboration:
    def test_outage_events_confirmed_when_enabled(self):
        analysis = _analyze(corroborate=True)
        assert analysis.changes is not None
        near = [
            e
            for e in analysis.changes.events
            if 13 <= e.day <= 17
        ]
        assert near, "the injected outage should produce change events"
        assert any(
            e.cause in ("outage-confirmed", "outage-like") for e in near
        )
        # nothing near the outage survives as a human candidate
        assert not [e for e in near if e.cause == "human-candidate"]

    def test_flag_off_keeps_paired_label_only(self):
        analysis = _analyze(corroborate=False)
        assert analysis.changes is not None
        assert not any(
            e.cause == "outage-confirmed" for e in analysis.changes.events
        )
