"""Smoke tests for the fast (non-campaign) experiment drivers.

The expensive world-scale experiments run in benchmarks/; here we check
the cheap ones end-to-end and validate the report plumbing of the rest.
"""

from __future__ import annotations

import pytest

from repro.experiments import REGISTRY, ablation_trend, fig1, fig2, fig4, fig6, fig11, fig15


class TestFig2:
    def test_matches_paper_table(self):
        result = fig2.run()
        assert result.matches_paper
        assert all(result.shape_checks().values())

    def test_report_contains_rows(self):
        report = fig2.format_report(fig2.run())
        assert "estimate:" in report and "truth:" in report


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return fig1.run()

    def test_block_is_change_sensitive(self, result):
        assert result.analysis.is_change_sensitive

    def test_wfh_detected_within_tolerance(self, result):
        assert result.detection_error_days is not None
        assert result.detection_error_days <= 4

    def test_eb_size_matches_paper(self, result):
        assert result.eb_size == 88  # the paper's |E(b)| for 128.9.144.0/24

    def test_shape_checks_pass(self, result):
        assert all(result.shape_checks().values()), result.shape_checks()


class TestFig4:
    def test_easy_beats_hard(self):
        result = fig4.run()
        assert result.easy.correlation > result.hard.correlation
        assert all(result.shape_checks().values()), result.shape_checks()


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6.run()

    def test_lossy_observer_identified(self, result):
        clean = result.clean_mean_raw
        assert result.rates_raw["w"] < clean - 0.03

    def test_repair_restores_lossy_observer(self, result):
        assert all(result.shape_checks().values()), result.shape_checks()


class TestFig11:
    def test_shape_checks(self):
        result = fig11.run()
        assert all(result.shape_checks().values()), result.shape_checks()


class TestFig15:
    def test_shape_checks(self):
        result = fig15.run()
        assert all(result.shape_checks().values()), result.shape_checks()


class TestAblation:
    def test_stl_beats_naive_under_outliers(self):
        result = ablation_trend.run()
        assert result.outlier_stl_rmse < result.outlier_naive_rmse
        assert all(result.shape_checks().values()), result.shape_checks()


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {
            "table2", "table3", "table4", "table5",
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
            "fig9", "fig10", "fig11", "fig12_13", "fig14", "fig15",
            "locations", "additional-probing", "ablation-trend",
            "network-types", "retraining", "appendix-e", "ablation-repair",
        }
        assert set(REGISTRY) == expected

    def test_every_module_has_interface(self):
        for name, module in REGISTRY.items():
            assert hasattr(module, "run"), name
            assert hasattr(module, "format_report"), name
            assert hasattr(module, "main"), name


class TestCli:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "table2" in out

    def test_unknown_experiment(self, capsys):
        from repro.cli import main

        assert main(["fig99"]) == 2

    def test_run_fig2(self, capsys):
        from repro.cli import main

        assert main(["fig2"]) == 0
        assert "matches the paper's table: True" in capsys.readouterr().out
