"""Tests for the experiment-campaign infrastructure."""

from __future__ import annotations

from datetime import date

import pytest

from repro.experiments.common import (
    bench_scale,
    control_world,
    covid_world,
)


class TestBenchScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert bench_scale(123) == 123

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "77")
        assert bench_scale(123) == 77


class TestWorldFactories:
    def test_memoized(self):
        assert covid_world(50, 1) is covid_world(50, 1)
        assert covid_world(50, 1) is not covid_world(50, 2)

    def test_scenarios_differ(self):
        assert covid_world(50, 1).scenario.name == "covid2020"
        assert control_world(50, 1).scenario.name == "baseline2023"

    def test_boost_changes_world(self):
        plain = covid_world(200, 3, diurnal_boost=1.0)
        boosted = covid_world(200, 3, diurnal_boost=4.0)
        def diurnal_count(world):
            return sum(s.kind in ("pool", "workplace", "home") for s in world.blocks)
        assert diurnal_count(boosted) > diurnal_count(plain)


class TestCampaignDayMath:
    def test_day_of_and_date_of_roundtrip(self):
        # use a lightweight fake: Campaign only needs world.epoch
        from repro.experiments.common import Campaign

        world = covid_world(50, 1)
        campaign = Campaign(
            world=world,
            baseline=None,
            records=(),
            analyses={},
            first_day=92,
            n_days=182,
        )
        d = date(2020, 3, 15)
        assert campaign.date_of(campaign.day_of(d)) == d
        assert campaign.day_of(date(2019, 10, 1)) == 0
        assert campaign.day_of(date(2020, 1, 1)) == 92


class TestCampaignScaleMemoization:
    def test_scale_change_invalidates_cache(self, monkeypatch):
        """REPRO_SCALE must be resolved before the memoized call: changing
        it between calls yields a fresh campaign, not the old scale's."""
        from repro.experiments.common import covid_campaign

        monkeypatch.setenv("REPRO_SCALE", "16")
        small = covid_campaign()
        assert small.world.n_blocks == 16

        monkeypatch.setenv("REPRO_SCALE", "24")
        bigger = covid_campaign()
        assert bigger.world.n_blocks == 24

        monkeypatch.setenv("REPRO_SCALE", "16")
        assert covid_campaign() is small  # same scale still hits the cache
