"""Unit tests for repro.timeseries.series.TimeSeries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.timeseries.series import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    TimeSeries,
    day_index,
    second_of_day,
)


def make(times, values) -> TimeSeries:
    return TimeSeries(np.asarray(times, dtype=float), np.asarray(values, dtype=float))


class TestConstruction:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="equal length"):
            make([0, 1, 2], [1, 2])

    def test_rejects_non_increasing_times(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            make([0, 2, 2], [1, 2, 3])

    def test_rejects_two_dimensional_input(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            TimeSeries(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_empty_series_is_allowed(self):
        ts = make([], [])
        assert ts.is_empty
        assert len(ts) == 0
        assert ts.duration == 0.0

    def test_duration_spans_first_to_last(self):
        assert make([10, 20, 50], [0, 0, 0]).duration == 40.0


class TestBasicOps:
    def test_with_values_keeps_times(self):
        ts = make([0, 1, 2], [1, 2, 3])
        other = ts.with_values(np.array([9.0, 9.0, 9.0]))
        assert np.array_equal(other.times, ts.times)
        assert np.all(other.values == 9.0)

    def test_dropna_removes_only_nans(self):
        ts = make([0, 1, 2, 3], [1, np.nan, 3, np.nan])
        clean = ts.dropna()
        assert np.array_equal(clean.times, [0, 2])
        assert np.array_equal(clean.values, [1, 3])

    def test_slice_time_is_half_open(self):
        ts = make([0, 10, 20, 30], [0, 1, 2, 3])
        sliced = ts.slice_time(10, 30)
        assert np.array_equal(sliced.times, [10, 20])


class TestResampling:
    def test_resample_mean_averages_within_bins(self):
        ts = make([0, 100, 3700], [2.0, 4.0, 10.0])
        hourly = ts.resample_mean(SECONDS_PER_HOUR)
        assert hourly.values[0] == pytest.approx(3.0)
        assert hourly.values[1] == pytest.approx(10.0)

    def test_resample_mean_marks_empty_bins_nan(self):
        ts = make([0, 2 * SECONDS_PER_HOUR + 1], [1.0, 5.0])
        hourly = ts.resample_mean(SECONDS_PER_HOUR)
        assert np.isnan(hourly.values[1])

    def test_resample_ignores_nan_samples(self):
        ts = make([0, 100], [np.nan, 6.0])
        hourly = ts.resample_mean(SECONDS_PER_HOUR)
        assert hourly.values[0] == pytest.approx(6.0)

    def test_interpolate_nan_fills_interior(self):
        ts = make([0, 1, 2, 3], [0.0, np.nan, np.nan, 3.0])
        filled = ts.interpolate_nan()
        assert np.allclose(filled.values, [0, 1, 2, 3])

    def test_interpolate_nan_holds_edges_flat(self):
        ts = make([0, 1, 2], [np.nan, 2.0, np.nan])
        filled = ts.interpolate_nan()
        assert np.allclose(filled.values, [2.0, 2.0, 2.0])


class TestDailyWindows:
    def test_daily_swing_per_utc_day(self):
        times = [0, 3600, SECONDS_PER_DAY + 10, SECONDS_PER_DAY + 7200]
        ts = make(times, [1.0, 5.0, 10.0, 4.0])
        days, swings = ts.daily_swing()
        assert list(days) == [0, 1]
        assert swings[0] == pytest.approx(4.0)
        assert swings[1] == pytest.approx(6.0)

    def test_daily_groups_skip_all_nan_days(self):
        ts = make([0, SECONDS_PER_DAY], [np.nan, 2.0])
        groups = ts.daily_groups()
        assert 0 not in groups
        assert 1 in groups


class TestStatistics:
    def test_zscore_normalizes(self):
        ts = make(np.arange(5), [1.0, 2.0, 3.0, 4.0, 5.0])
        z = ts.zscore()
        assert z.values.mean() == pytest.approx(0.0, abs=1e-12)
        assert z.values.std() == pytest.approx(1.0)

    def test_zscore_constant_becomes_zero(self):
        z = make(np.arange(4), [7.0] * 4).zscore()
        assert np.allclose(z.values, 0.0)

    def test_pearson_identity(self):
        ts = make(np.arange(10), np.random.default_rng(0).normal(size=10))
        assert ts.pearson(ts) == pytest.approx(1.0)

    def test_pearson_requires_same_grid(self):
        a = make([0, 1, 2], [1, 2, 3])
        b = make([0, 1], [1, 2])
        with pytest.raises(ValueError, match="time grid"):
            a.pearson(b)

    def test_pearson_ignores_nan_pairs(self):
        a = make([0, 1, 2, 3], [1.0, np.nan, 3.0, 4.0])
        b = make([0, 1, 2, 3], [2.0, 5.0, 6.0, 8.0])
        assert np.isfinite(a.pearson(b))


class TestDayHelpers:
    def test_day_index(self):
        assert day_index(0.0) == 0
        assert day_index(SECONDS_PER_DAY - 1) == 0
        assert day_index(SECONDS_PER_DAY) == 1

    def test_day_index_with_offset(self):
        # an epoch 6 hours into the UTC day
        assert day_index(0.0, epoch_offset=6 * 3600) == 0
        assert day_index(19 * 3600, epoch_offset=6 * 3600) == 1

    def test_second_of_day_wraps(self):
        assert second_of_day(SECONDS_PER_DAY + 5) == pytest.approx(5.0)
