"""Unit tests for target-list retraining and result export."""

from __future__ import annotations

import io
import json
from datetime import datetime

import numpy as np
import pytest

from repro.core.aggregate import BlockRecord, GridAggregator
from repro.datasets.targets import TargetList, TargetListManager
from repro.export import blocks_csv, gridcell_csv, gridcell_geojson
from repro.net.events import Calendar
from repro.net.geo import GeoInfo
from repro.net.observations import ObservationSeries
from repro.net.usage import BlockTruth


def obs(addrs, results):
    n = len(addrs)
    return ObservationSeries(
        times=np.arange(n, dtype=float),
        addresses=np.asarray(addrs, dtype=np.int16),
        results=np.asarray(results, dtype=bool),
    )


class TestTargetList:
    def test_addresses_sorted_unique(self):
        tl = TargetList(addresses=np.array([5, 1, 5, 3], dtype=np.int16), quarter=0)
        assert tl.addresses.tolist() == [1, 3, 5]
        assert len(tl) == 3

    def test_contains(self):
        tl = TargetList(addresses=np.array([1, 3, 5], dtype=np.int16), quarter=0)
        assert tl.contains(3)
        assert not tl.contains(4)
        assert not tl.contains(200)


class TestTargetListManager:
    def test_responders_stay(self):
        manager = TargetListManager()
        tl = TargetList(addresses=np.array([1, 2], dtype=np.int16), quarter=0)
        refreshed = manager.refresh(tl, obs([1, 2], [True, True]))
        assert refreshed.addresses.tolist() == [1, 2]
        assert refreshed.quarter == 1

    def test_silent_addresses_survive_until_expiry(self):
        manager = TargetListManager(expire_after_quarters=2)
        tl = TargetList(addresses=np.array([1, 2], dtype=np.int16), quarter=0)
        once = manager.refresh(tl, obs([1, 2], [True, False]))
        assert once.contains(2)  # silent one quarter: still targeted
        twice = manager.refresh(once, obs([1, 2], [True, False]))
        assert not twice.contains(2)  # expired
        assert twice.contains(1)

    def test_sweep_rediscovers_new_addresses(self):
        manager = TargetListManager()
        tl = TargetList(addresses=np.array([1], dtype=np.int16), quarter=0)
        refreshed = manager.refresh(
            tl, obs([1], [True]), sweep_responders=np.array([7, 9], dtype=np.int16)
        )
        assert refreshed.contains(7)
        assert refreshed.contains(9)

    def test_reply_resets_silence_counter(self):
        manager = TargetListManager(expire_after_quarters=2)
        tl = TargetList(addresses=np.array([1], dtype=np.int16), quarter=0)
        tl = manager.refresh(tl, obs([1], [False]))  # silent once
        tl = manager.refresh(tl, obs([1], [True]))  # replies: reset
        tl = manager.refresh(tl, obs([1], [False]))  # silent once again
        assert tl.contains(1)

    def test_sweep_reads_truth_column(self):
        truth = BlockTruth(
            addresses=np.array([1, 2, 3], dtype=np.int16),
            active=np.array([[True, False], [False, True], [True, True]]),
            col_times=np.array([0.0, 660.0]),
        )
        manager = TargetListManager()
        assert sorted(manager.sweep(truth, 0.0).tolist()) == [1, 3]
        assert sorted(manager.sweep(truth, 700.0).tolist()) == [2, 3]

    def test_initial_list_from_truth(self):
        truth = BlockTruth(
            addresses=np.array([4, 9], dtype=np.int16),
            active=np.zeros((2, 3), dtype=bool),
            col_times=np.arange(3) * 660.0,
        )
        tl = TargetListManager().initial_list(truth)
        assert tl.addresses.tolist() == [4, 9]


def _aggregator():
    agg = GridAggregator(min_responsive=1, min_change_sensitive=1)
    geo = GeoInfo(lat=30.5, lon=114.5, country="China", continent="Asia", city="Wuhan")
    agg.add(BlockRecord(geo=geo, responsive=True, change_sensitive=True, downward_days=(3, 5)))
    agg.add(BlockRecord(geo=geo, responsive=True, change_sensitive=True, downward_days=(3,)))
    return agg


class TestExport:
    def test_gridcell_csv(self):
        buffer = io.StringIO()
        rows = gridcell_csv(_aggregator(), buffer, first_day=0, n_days=10)
        lines = buffer.getvalue().strip().splitlines()
        assert rows == 2  # days 3 and 5 have activity
        assert lines[0].startswith("cell_lat,cell_lon")
        day3 = [l for l in lines if ",3," in l][0]
        assert "1.0" in day3  # both blocks down on day 3

    def test_gridcell_geojson(self):
        buffer = io.StringIO()
        count = gridcell_geojson(_aggregator(), buffer)
        payload = json.loads(buffer.getvalue())
        assert count == 1
        assert payload["type"] == "FeatureCollection"
        feature = payload["features"][0]
        assert feature["properties"]["change_sensitive_blocks"] == 2
        ring = feature["geometry"]["coordinates"][0]
        assert ring[0] == [114, 30]

    def test_blocks_csv(self):
        geo = GeoInfo(lat=1.0, lon=2.0, country="X", continent="Asia", city="Y")
        records = [
            BlockRecord(geo=geo, responsive=True, change_sensitive=False),
            BlockRecord(geo=geo, responsive=False, change_sensitive=False),
        ]
        buffer = io.StringIO()
        assert blocks_csv(records, buffer) == 2
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == 3

    def test_path_destinations(self, tmp_path):
        target = tmp_path / "cells.csv"
        gridcell_csv(_aggregator(), target, first_day=0, n_days=10)
        assert target.read_text().startswith("cell_lat")
