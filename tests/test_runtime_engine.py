"""Tests for the campaign engine, executors, and run metrics."""

from __future__ import annotations

import pickle

import pytest

import repro.runtime.executors as executors_mod
from repro.core.pipeline import BlockPipeline
from repro.core.stages import PIPELINE_STAGES
from repro.datasets.builder import DatasetBuilder
from repro.datasets.catalog import dataset
from repro.net.world import WorldModel, scenario_covid2020
from repro.runtime import (
    BlockAnalysisJob,
    BlockResult,
    CampaignEngine,
    ParallelExecutor,
    SerialExecutor,
    default_engine,
)

DATASET = "2020it89-match-ejnw"  # two weeks, four observers: cheap but real


@pytest.fixture(scope="module")
def world200() -> WorldModel:
    """The acceptance-scale world: 200 routed blocks."""
    return WorldModel(scenario_covid2020(), n_blocks=200, seed=7)


@pytest.fixture(scope="module")
def serial_result(world200):
    engine = CampaignEngine(SerialExecutor())
    return DatasetBuilder(world200).analyze(DATASET, engine=engine)


class TestSerialParallelEquivalence:
    def test_parallel_matches_serial_byte_identical(self, world200, serial_result):
        engine = CampaignEngine(ParallelExecutor(workers=2))
        parallel = DatasetBuilder(world200).analyze(DATASET, engine=engine)
        assert engine.executor.fallback_reason is None
        assert list(parallel.analyses) == list(serial_result.analyses)
        for cidr, analysis in parallel.analyses.items():
            assert pickle.dumps(analysis) == pickle.dumps(
                serial_result.analyses[cidr]
            ), f"parallel diverged from serial for {cidr}"

    def test_workers_one_degenerates_to_serial(self, world200, serial_result):
        executor = ParallelExecutor(workers=1)
        engine = CampaignEngine(executor)
        result = DatasetBuilder(world200).analyze(DATASET, engine=engine)
        assert result.funnel() == serial_result.funnel()
        assert engine.history[-1].executor == "parallel[1]"


class TestRunMetrics:
    def test_stage_totals_cover_routed_blocks(self, serial_result):
        metrics = serial_result.metrics
        assert metrics is not None
        routed = metrics.funnel["routed"]
        assert routed == 200
        for name in PIPELINE_STAGES:
            totals = metrics.stages[name]
            assert totals.touched >= routed, name

    def test_funnel_matches_dataset_result(self, serial_result):
        funnel = serial_result.funnel()
        assert serial_result.metrics.funnel == {
            "routed": funnel.routed,
            "responsive": funnel.responsive,
            "diurnal": funnel.diurnal,
            "wide_swing": funnel.wide_swing,
            "change_sensitive": funnel.change_sensitive,
        }

    def test_firewalled_blocks_skip_every_stage(self, serial_result):
        # every pipeline stage must see the same firewalled-skip count
        metrics = serial_result.metrics
        firewalled = {
            name: metrics.stages[name].skips.get("firewalled", 0)
            for name in PIPELINE_STAGES
        }
        assert len(set(firewalled.values())) == 1
        assert firewalled["repair"] > 0  # the world does have firewalled blocks

    def test_report_and_dict(self, serial_result):
        metrics = serial_result.metrics
        text = metrics.report()
        assert "blocks/s" in text and "reconstruct" in text and "funnel:" in text
        d = metrics.as_dict()
        assert d["n_tasks"] == 200
        assert set(d["stages"]) >= set(PIPELINE_STAGES)
        assert d["funnel"]["routed"] == 200

    def test_simulate_stage_dominates(self, serial_result):
        # observation simulation is the hot path; the record must exist
        assert serial_result.metrics.stages["simulate"].calls > 0


class TestFallback:
    def test_pool_spawn_failure_falls_back_to_serial(self, monkeypatch, world200):
        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no processes for you")

        monkeypatch.setattr(executors_mod, "ProcessPoolExecutor", ExplodingPool)
        executor = ParallelExecutor(workers=2)
        engine = CampaignEngine(executor)
        blocks = list(world200.blocks)[:20]
        result = DatasetBuilder(world200).analyze(DATASET, blocks=blocks, engine=engine)
        assert len(result.analyses) == 20  # no block lost
        assert "pool spawn failed" in executor.fallback_reason
        assert engine.history[-1].fallback == executor.fallback_reason

    def test_fallback_results_match_serial(self, monkeypatch, world200, serial_result):
        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise OSError("boom")

        monkeypatch.setattr(executors_mod, "ProcessPoolExecutor", ExplodingPool)
        engine = CampaignEngine(ParallelExecutor(workers=2))
        blocks = list(world200.blocks)[:20]
        result = DatasetBuilder(world200).analyze(DATASET, blocks=blocks, engine=engine)
        for cidr, analysis in result.analyses.items():
            assert pickle.dumps(analysis) == pickle.dumps(
                serial_result.analyses[cidr]
            )


class TestEngineGenerics:
    def test_ordering_preserved_for_plain_tasks(self):
        engine = CampaignEngine(ParallelExecutor(workers=2, chunk_size=3))
        run = engine.run(_square, list(range(20)), label="squares")
        assert run.results == [i * i for i in range(20)]
        assert run.metrics.n_tasks == 20
        assert run.metrics.funnel == {}  # no BlockResults -> no funnel

    def test_engine_history_accumulates(self):
        engine = CampaignEngine()
        engine.run(_square, [1, 2], label="a")
        engine.run(_square, [3], label="b")
        assert [m.label for m in engine.history] == ["a", "b"]
        assert engine.history[0].executor == "serial"

    def test_task_exception_propagates(self):
        engine = CampaignEngine(ParallelExecutor(workers=2))
        with pytest.raises(ValueError, match="bad task"):
            engine.run(_explode, list(range(8)), label="explode")


class TestDefaultEngine:
    def test_unset_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert isinstance(default_engine().executor, SerialExecutor)

    def test_env_selects_parallel(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        executor = default_engine().executor
        assert isinstance(executor, ParallelExecutor)
        assert executor.workers == 3

    def test_garbage_env_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.warns(RuntimeWarning, match="not an integer"):
            assert isinstance(default_engine().executor, SerialExecutor)


class TestBlockAnalysisJob:
    def test_job_is_picklable(self, world200):
        job = BlockAnalysisJob(
            world=world200, ds=dataset(DATASET), pipeline=BlockPipeline()
        )
        clone = pickle.loads(pickle.dumps(job))
        spec = next(s for s in world200.blocks if s.responsive_by_design)
        a = job(spec)
        b = clone(spec)
        assert isinstance(a, BlockResult)
        assert pickle.dumps(a.analysis) == pickle.dumps(b.analysis)

    def test_firewalled_block_short_circuits(self, world200):
        job = BlockAnalysisJob(
            world=world200, ds=dataset(DATASET), pipeline=BlockPipeline()
        )
        spec = next(s for s in world200.blocks if not s.responsive_by_design)
        result = job(spec)
        assert not result.analysis.classification.responsive
        assert all(r.skipped == "firewalled" for r in result.stages)


def _square(x: int) -> int:
    return x * x


def _explode(x: int) -> int:
    if x == 5:
        raise ValueError("bad task")
    return x
