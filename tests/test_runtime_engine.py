"""Tests for the campaign engine, executors, and run metrics."""

from __future__ import annotations

import pickle

import pytest

import repro.runtime.executors as executors_mod
from repro.core.pipeline import BlockPipeline
from repro.core.stages import PIPELINE_STAGES
from repro.datasets.builder import DatasetBuilder
from repro.datasets.catalog import dataset
from repro.net.world import WorldModel, scenario_covid2020
from repro.runtime import (
    AnalysisCache,
    BlockAnalysisJob,
    BlockResult,
    CampaignEngine,
    ParallelExecutor,
    SerialExecutor,
    default_engine,
    stable_token,
    task_key,
)

DATASET = "2020it89-match-ejnw"  # two weeks, four observers: cheap but real


@pytest.fixture(scope="module")
def world200() -> WorldModel:
    """The acceptance-scale world: 200 routed blocks."""
    return WorldModel(scenario_covid2020(), n_blocks=200, seed=7)


@pytest.fixture(scope="module")
def serial_result(world200):
    engine = CampaignEngine(SerialExecutor())
    return DatasetBuilder(world200).analyze(DATASET, engine=engine)


class TestSerialParallelEquivalence:
    def test_parallel_matches_serial_byte_identical(self, world200, serial_result):
        engine = CampaignEngine(ParallelExecutor(workers=2))
        parallel = DatasetBuilder(world200).analyze(DATASET, engine=engine)
        assert engine.executor.fallback_reason is None
        assert list(parallel.analyses) == list(serial_result.analyses)
        for cidr, analysis in parallel.analyses.items():
            assert pickle.dumps(analysis) == pickle.dumps(
                serial_result.analyses[cidr]
            ), f"parallel diverged from serial for {cidr}"

    def test_workers_one_degenerates_to_serial(self, world200, serial_result):
        executor = ParallelExecutor(workers=1)
        engine = CampaignEngine(executor)
        result = DatasetBuilder(world200).analyze(DATASET, engine=engine)
        assert result.funnel() == serial_result.funnel()
        assert engine.history[-1].executor == "parallel[1]"


class TestRunMetrics:
    def test_stage_totals_cover_routed_blocks(self, serial_result):
        metrics = serial_result.metrics
        assert metrics is not None
        routed = metrics.funnel["routed"]
        assert routed == 200
        for name in PIPELINE_STAGES:
            totals = metrics.stages[name]
            assert totals.touched >= routed, name

    def test_funnel_matches_dataset_result(self, serial_result):
        funnel = serial_result.funnel()
        assert serial_result.metrics.funnel == {
            "routed": funnel.routed,
            "responsive": funnel.responsive,
            "diurnal": funnel.diurnal,
            "wide_swing": funnel.wide_swing,
            "change_sensitive": funnel.change_sensitive,
        }

    def test_firewalled_blocks_skip_every_stage(self, serial_result):
        # every pipeline stage must see the same firewalled-skip count
        metrics = serial_result.metrics
        firewalled = {
            name: metrics.stages[name].skips.get("firewalled", 0)
            for name in PIPELINE_STAGES
        }
        assert len(set(firewalled.values())) == 1
        assert firewalled["repair"] > 0  # the world does have firewalled blocks

    def test_report_and_dict(self, serial_result):
        metrics = serial_result.metrics
        text = metrics.report()
        assert "blocks/s" in text and "reconstruct" in text and "funnel:" in text
        d = metrics.as_dict()
        assert d["n_tasks"] == 200
        assert set(d["stages"]) >= set(PIPELINE_STAGES)
        assert d["funnel"]["routed"] == 200

    def test_simulate_stage_dominates(self, serial_result):
        # observation simulation is the hot path; the record must exist
        assert serial_result.metrics.stages["simulate"].calls > 0


class TestFallback:
    def test_pool_spawn_failure_falls_back_to_serial(self, monkeypatch, world200):
        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no processes for you")

        monkeypatch.setattr(executors_mod, "ProcessPoolExecutor", ExplodingPool)
        executor = ParallelExecutor(workers=2)
        engine = CampaignEngine(executor)
        blocks = list(world200.blocks)[:20]
        result = DatasetBuilder(world200).analyze(DATASET, blocks=blocks, engine=engine)
        assert len(result.analyses) == 20  # no block lost
        assert "pool spawn failed" in executor.fallback_reason
        assert engine.history[-1].fallback == executor.fallback_reason

    def test_fallback_results_match_serial(self, monkeypatch, world200, serial_result):
        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise OSError("boom")

        monkeypatch.setattr(executors_mod, "ProcessPoolExecutor", ExplodingPool)
        engine = CampaignEngine(ParallelExecutor(workers=2))
        blocks = list(world200.blocks)[:20]
        result = DatasetBuilder(world200).analyze(DATASET, blocks=blocks, engine=engine)
        for cidr, analysis in result.analyses.items():
            assert pickle.dumps(analysis) == pickle.dumps(
                serial_result.analyses[cidr]
            )


class TestEngineGenerics:
    def test_ordering_preserved_for_plain_tasks(self):
        engine = CampaignEngine(ParallelExecutor(workers=2, chunk_size=3))
        run = engine.run(_square, list(range(20)), label="squares")
        assert run.results == [i * i for i in range(20)]
        assert run.metrics.n_tasks == 20
        assert run.metrics.funnel == {}  # no BlockResults -> no funnel

    def test_engine_history_accumulates(self):
        engine = CampaignEngine()
        engine.run(_square, [1, 2], label="a")
        engine.run(_square, [3], label="b")
        assert [m.label for m in engine.history] == ["a", "b"]
        assert engine.history[0].executor == "serial"

    def test_task_exception_propagates(self):
        engine = CampaignEngine(ParallelExecutor(workers=2))
        with pytest.raises(ValueError, match="bad task"):
            engine.run(_explode, list(range(8)), label="explode")


class TestDefaultEngine:
    def test_unset_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert isinstance(default_engine().executor, SerialExecutor)

    def test_env_selects_parallel(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        executor = default_engine().executor
        assert isinstance(executor, ParallelExecutor)
        assert executor.workers == 3

    def test_garbage_env_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.warns(RuntimeWarning, match="not an integer"):
            assert isinstance(default_engine().executor, SerialExecutor)


class TestBlockAnalysisJob:
    def test_job_is_picklable(self, world200):
        job = BlockAnalysisJob(
            world=world200, ds=dataset(DATASET), pipeline=BlockPipeline()
        )
        clone = pickle.loads(pickle.dumps(job))
        spec = next(s for s in world200.blocks if s.responsive_by_design)
        a = job(spec)
        b = clone(spec)
        assert isinstance(a, BlockResult)
        assert pickle.dumps(a.analysis) == pickle.dumps(b.analysis)

    def test_firewalled_block_short_circuits(self, world200):
        job = BlockAnalysisJob(
            world=world200, ds=dataset(DATASET), pipeline=BlockPipeline()
        )
        spec = next(s for s in world200.blocks if not s.responsive_by_design)
        result = job(spec)
        assert not result.analysis.classification.responsive
        assert all(r.skipped == "firewalled" for r in result.stages)


class TestAnalysisCache:
    N = 30  # blocks per cached run: cheap but covers firewalled + responsive

    def _blocks(self, world200):
        return list(world200.blocks)[: self.N]

    def test_cold_then_warm_disk_byte_identical(
        self, world200, serial_result, tmp_path
    ):
        blocks = self._blocks(world200)
        cold_engine = CampaignEngine(SerialExecutor(), AnalysisCache(tmp_path))
        cold = DatasetBuilder(world200).analyze(
            DATASET, blocks=blocks, engine=cold_engine
        )
        assert cold.metrics.cache == {"hits": 0, "misses": self.N, "stores": self.N}
        # a fresh engine + fresh in-memory tier: every hit comes from disk
        warm_engine = CampaignEngine(SerialExecutor(), AnalysisCache(tmp_path))
        warm = DatasetBuilder(world200).analyze(
            DATASET, blocks=blocks, engine=warm_engine
        )
        assert warm.metrics.cache == {"hits": self.N, "misses": 0, "stores": 0}
        assert list(warm.analyses) == list(cold.analyses)
        for cidr, analysis in warm.analyses.items():
            reference = pickle.dumps(serial_result.analyses[cidr])
            assert pickle.dumps(analysis) == reference
            assert pickle.dumps(cold.analyses[cidr]) == reference
        assert warm.funnel() == cold.funnel()
        assert f"cache: {self.N}/{self.N} hits (100%)" in warm.metrics.report()

    def test_parallel_with_cache_matches_serial(
        self, world200, serial_result, tmp_path
    ):
        blocks = self._blocks(world200)
        engine = CampaignEngine(ParallelExecutor(workers=2), AnalysisCache(tmp_path))
        cold = DatasetBuilder(world200).analyze(DATASET, blocks=blocks, engine=engine)
        assert engine.executor.fallback_reason is None
        assert cold.metrics.cache == {"hits": 0, "misses": self.N, "stores": self.N}
        warm = DatasetBuilder(world200).analyze(DATASET, blocks=blocks, engine=engine)
        assert warm.metrics.cache == {"hits": self.N, "misses": 0, "stores": 0}
        for cidr, analysis in warm.analyses.items():
            assert pickle.dumps(analysis) == pickle.dumps(serial_result.analyses[cidr])

    def test_memory_only_tier(self, world200, serial_result):
        blocks = self._blocks(world200)
        engine = CampaignEngine(SerialExecutor(), AnalysisCache())  # no disk
        DatasetBuilder(world200).analyze(DATASET, blocks=blocks, engine=engine)
        warm = DatasetBuilder(world200).analyze(DATASET, blocks=blocks, engine=engine)
        assert warm.metrics.cache == {"hits": self.N, "misses": 0, "stores": 0}
        for cidr, analysis in warm.analyses.items():
            assert pickle.dumps(analysis) == pickle.dumps(serial_result.analyses[cidr])

    def test_corrupt_disk_entries_recompute(self, world200, serial_result, tmp_path):
        blocks = self._blocks(world200)
        engine = CampaignEngine(SerialExecutor(), AnalysisCache(tmp_path))
        DatasetBuilder(world200).analyze(DATASET, blocks=blocks, engine=engine)
        for pkl in tmp_path.rglob("*.pkl"):
            pkl.write_bytes(b"not a pickle")
        fresh = CampaignEngine(SerialExecutor(), AnalysisCache(tmp_path))
        result = DatasetBuilder(world200).analyze(
            DATASET, blocks=blocks, engine=fresh
        )
        assert result.metrics.cache["hits"] == 0  # every load failed -> recompute
        assert result.metrics.cache["misses"] == self.N
        for cidr, analysis in result.analyses.items():
            assert pickle.dumps(analysis) == pickle.dumps(serial_result.analyses[cidr])

    def test_plain_tasks_bypass_cache(self):
        engine = CampaignEngine(SerialExecutor(), AnalysisCache())
        run = engine.run(_square, [1, 2, 3], label="squares")
        assert run.results == [1, 4, 9]
        assert run.metrics.cache is None  # fn has no cache_key: never consulted

    def test_memory_lru_eviction(self):
        cache = AnalysisCache(max_items=2)
        for i in range(3):
            cache.put(f"k{i}", i)
        assert len(cache) == 2
        assert cache.get("k0") == (False, None)  # oldest evicted
        assert cache.get("k2") == (True, 2)

    def test_cached_hits_drop_stage_records(self, world200, tmp_path):
        blocks = self._blocks(world200)
        engine = CampaignEngine(SerialExecutor(), AnalysisCache(tmp_path))
        DatasetBuilder(world200).analyze(DATASET, blocks=blocks, engine=engine)
        warm = DatasetBuilder(world200).analyze(DATASET, blocks=blocks, engine=engine)
        # no stage work happened, so stage totals must not claim any
        assert all(t.calls == 0 for t in warm.metrics.stages.values())
        assert warm.metrics.funnel["routed"] == self.N


class TestTaskKey:
    def test_deterministic_and_spec_sensitive(self, world200):
        job = BlockAnalysisJob(
            world=world200, ds=dataset(DATASET), pipeline=BlockPipeline()
        )
        specs = list(world200.blocks)[:2]
        key = job.cache_key(specs[0])
        assert isinstance(key, str) and len(key) == 64
        assert key == job.cache_key(specs[0])
        assert key != job.cache_key(specs[1])

    def test_pipeline_parameters_change_the_key(self, world200):
        spec = list(world200.blocks)[0]
        a = BlockAnalysisJob(
            world=world200, ds=dataset(DATASET), pipeline=BlockPipeline()
        )
        b = BlockAnalysisJob(
            world=world200,
            ds=dataset(DATASET),
            pipeline=BlockPipeline(),
            observer_style="bayesian",
        )
        assert a.cache_key(spec) != b.cache_key(spec)

    def test_unkeyable_inputs_return_none(self):
        assert task_key("kind", {"fn": lambda: None}) is None

    def test_stable_token_dict_order_insensitive(self):
        assert stable_token({"a": 1, "b": 2}) == stable_token({"b": 2, "a": 1})


def _square(x: int) -> int:
    return x * x


def _explode(x: int) -> int:
    if x == 5:
        raise ValueError("bad task")
    return x


class TestBatchedDispatch:
    """The batched columnar path must be invisible in every output."""

    @pytest.fixture(scope="class")
    def per_block_result(self, world200):
        engine = CampaignEngine(SerialExecutor(), batched=False)
        result = DatasetBuilder(world200).analyze(DATASET, engine=engine)
        assert result.metrics.batched is None
        return result

    def test_batched_serial_matches_per_block(self, serial_result, per_block_result):
        # serial_result runs through the batched default path
        assert serial_result.metrics.batched is not None
        assert list(serial_result.analyses) == list(per_block_result.analyses)
        for cidr, analysis in serial_result.analyses.items():
            assert pickle.dumps(analysis) == pickle.dumps(
                per_block_result.analyses[cidr]
            ), f"batched diverged from per-block for {cidr}"

    def test_batched_parallel_matches_per_block(self, world200, per_block_result):
        engine = CampaignEngine(ParallelExecutor(workers=2), batched=True)
        result = DatasetBuilder(world200).analyze(DATASET, engine=engine)
        assert engine.executor.fallback_reason is None
        stats = result.metrics.batched
        assert stats is not None and stats["chunks"] > 1  # genuinely fanned out
        for cidr, analysis in result.analyses.items():
            assert pickle.dumps(analysis) == pickle.dumps(
                per_block_result.analyses[cidr]
            ), f"parallel batched diverged from per-block for {cidr}"

    def test_stage_records_match_per_block(self, serial_result, per_block_result):
        batched = serial_result.metrics
        scalar = per_block_result.metrics
        for name in PIPELINE_STAGES:
            b, s = batched.stages[name], scalar.stages[name]
            assert (b.calls, b.n_in, b.n_out, b.skips) == (
                s.calls,
                s.n_in,
                s.n_out,
                s.skips,
            ), name

    def test_batched_stats_shape(self, serial_result):
        stats = serial_result.metrics.batched
        assert set(stats) == {"blocks", "groups", "chunks"}
        # every non-firewalled block survives reconstruction; one shared
        # grid -> one group; serial execution -> one chunk per group
        assert stats["blocks"] > 0
        assert stats["groups"] == stats["chunks"] == 1

    def test_metrics_roundtrip_carries_batched(self, serial_result):
        from repro.runtime import RunMetrics

        metrics = serial_result.metrics
        again = RunMetrics.from_dict(metrics.as_dict())
        assert again.batched == metrics.batched
        assert "batched:" in again.report()

    def test_split_jobs_are_picklable(self, world200):
        job = BlockAnalysisJob(
            world=world200, ds=dataset(DATASET), pipeline=BlockPipeline()
        )
        recon_fn, tail_fn = job.batched_split()
        # WorldModel has identity equality; compare via the stable token
        assert stable_token(pickle.loads(pickle.dumps(recon_fn))) == stable_token(
            recon_fn
        )
        assert pickle.loads(pickle.dumps(tail_fn)) == tail_fn

    def test_firewalled_short_circuits_reconstruction(self, world200):
        from repro.runtime import BlockReconstructJob

        spec = next(s for s in world200.blocks if not s.responsive_by_design)
        job = BlockReconstructJob(
            world=world200, ds=dataset(DATASET), pipeline=BlockPipeline()
        )
        result = job(spec)
        assert isinstance(result, BlockResult)
        assert all(r.skipped for r in result.stages)

    def test_cache_is_path_agnostic(self, world200, serial_result, tmp_path):
        # a cache written by the per-block path must be served verbatim
        # by the batched path (same keys, same bytes) — and hits must
        # bypass both phases.
        cache = AnalysisCache(tmp_path)
        cold = CampaignEngine(SerialExecutor(), cache=cache, batched=False)
        first = DatasetBuilder(world200).analyze(DATASET, engine=cold)
        assert cold.history[-1].cache["misses"] == 200
        warm = CampaignEngine(SerialExecutor(), cache=cache, batched=True)
        second = DatasetBuilder(world200).analyze(DATASET, engine=warm)
        assert warm.history[-1].cache["hits"] == 200
        # hits bypass both phases: nothing was reconstructed or chunked
        assert warm.history[-1].batched == {"blocks": 0, "groups": 0, "chunks": 0}
        for cidr, analysis in second.analyses.items():
            assert pickle.dumps(analysis) == pickle.dumps(first.analyses[cidr])

    def test_env_var_controls_default(self, monkeypatch):
        from repro.runtime.engine import _resolve_batched

        monkeypatch.delenv("REPRO_BATCHED", raising=False)
        assert _resolve_batched(None) is True
        for raw, expected in [
            ("1", True),
            ("true", True),
            ("ON", True),
            ("0", False),
            ("no", False),
            ("Off", False),
            ("", True),
        ]:
            monkeypatch.setenv("REPRO_BATCHED", raw)
            assert _resolve_batched(None) is expected, raw
        # explicit argument beats the environment
        monkeypatch.setenv("REPRO_BATCHED", "0")
        assert _resolve_batched(True) is True

    def test_garbage_env_warns_and_defaults_on(self, monkeypatch):
        from repro.runtime.engine import _resolve_batched

        monkeypatch.setenv("REPRO_BATCHED", "sideways")
        with pytest.warns(RuntimeWarning, match="REPRO_BATCHED"):
            assert _resolve_batched(None) is True
