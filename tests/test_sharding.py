"""Tests for sharded out-of-core campaigns: planning, spill, identity.

The contract under test is the one docs/algorithms.md §16 states: a
sharded run (``--shards N``) is an execution detail.  Plans partition
tasks contiguously, spilled results rehydrate byte-identically, caches
stay warm across re-sharding, and every experiment output matches the
unsharded run under ``pickle.dumps`` — for serial, parallel, and shm
dispatch alike.
"""

from __future__ import annotations

import gc
import pickle
import tracemalloc

import numpy as np
import pytest

from repro.datasets.builder import DatasetBuilder, SpilledAnalyses
from repro.net.world import WorldModel, scenario_covid2020
from repro.obs.progress import ProgressEmitter, use_progress
from repro.runtime import (
    AnalysisCache,
    CampaignEngine,
    ParallelExecutor,
    SerialExecutor,
    ShardPlan,
    SpillDir,
    SpilledResults,
    resolve_shards,
)

DATASET = "2020it89-match-ejnw"  # two weeks, four observers: cheap but real


def _square(x):
    return x * x


def _boom_on_seven(x):
    if x == 7:
        raise RuntimeError("task 7 exploded")
    return x


def _alloc_block(n):
    # ~240 KB per task: big enough that holding all results dominates
    # the coordinator's allocation peak in the RSS-bound test
    return np.arange(30_000, dtype=np.float64) + float(n)


# ---------------------------------------------------------------------------
# planning
# ---------------------------------------------------------------------------
class TestShardPlan:
    @pytest.mark.parametrize("n_shards,n_tasks", [(1, 5), (3, 10), (4, 4), (7, 100)])
    def test_ranges_contiguous_balanced_and_complete(self, n_shards, n_tasks):
        plan = ShardPlan.plan(n_shards, n_tasks)
        ranges = plan.ranges
        assert ranges[0][0] == 0 and ranges[-1][1] == n_tasks
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo  # contiguous, no gap or overlap
        sizes = [hi - lo for lo, hi in ranges]
        assert max(sizes) - min(sizes) <= 1  # balanced within one task
        assert all(size > 0 for size in sizes)  # no empty shard

    def test_shard_of_is_the_inverse_of_ranges(self):
        plan = ShardPlan.plan(5, 23)
        for shard, (lo, hi) in enumerate(plan.ranges):
            for index in range(lo, hi):
                assert plan.shard_of(index) == shard
        with pytest.raises(IndexError):
            plan.shard_of(23)
        with pytest.raises(IndexError):
            plan.shard_of(-1)

    def test_plan_clamps_to_task_count(self):
        assert ShardPlan.plan(10, 3).n_shards == 3
        assert ShardPlan.plan(0, 5).n_shards == 1
        assert ShardPlan.plan(-2, 5).n_shards == 1
        assert ShardPlan.plan(4, 0).n_shards == 1  # empty runs stay unsharded


class TestResolveShards:
    def test_explicit_value_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "9")
        assert resolve_shards(3) == 3
        assert resolve_shards(0) == 1

    def test_environment_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert resolve_shards(None) == 1
        monkeypatch.setenv("REPRO_SHARDS", "")
        assert resolve_shards(None) == 1
        monkeypatch.setenv("REPRO_SHARDS", "6")
        assert resolve_shards(None) == 6
        assert CampaignEngine(SerialExecutor()).shards == 6

    def test_garbage_value_warns_and_runs_unsharded(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "many")
        with pytest.warns(RuntimeWarning, match="REPRO_SHARDS"):
            assert resolve_shards(None) == 1
        monkeypatch.setenv("REPRO_SHARDS", "-4")
        with pytest.warns(RuntimeWarning, match="REPRO_SHARDS"):
            assert resolve_shards(None) == 1

    def test_cli_flag_sets_environment(self, monkeypatch, capsys):
        import os

        from repro.cli import main

        # setenv first so monkeypatch restores the *original* (unset)
        # state at teardown even though main() overwrites the value
        monkeypatch.setenv("REPRO_SHARDS", "stale")
        assert main(["--shards", "4", "list"]) == 0
        assert os.environ["REPRO_SHARDS"] == "4"


# ---------------------------------------------------------------------------
# spill round-trips
# ---------------------------------------------------------------------------
class TestSpillRoundTrip:
    def _roundtrip(self, items, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        spill = SpillDir.create()
        reader = spill.write_shard(0, items)
        results = SpilledResults(spill, [reader])
        return results

    def test_external_arrays_rehydrate_byte_identical(self, tmp_path, monkeypatch):
        rng = np.random.default_rng(17)
        items = [
            {"f8": rng.normal(size=256), "i4": rng.integers(0, 9, 64).astype("<i4")},
            {"c16": (rng.normal(size=32) + 1j * rng.normal(size=32))},
            {"2d": rng.normal(size=(16, 16)), "bool": rng.normal(size=128) > 0},
            {
                "dt": np.arange(64).astype("datetime64[s]"),
                "td": np.arange(64).astype("timedelta64[ms]"),
            },
        ]
        results = self._roundtrip(items, tmp_path, monkeypatch)
        assert len(results) == len(items)
        for original, loaded in zip(items, results):
            assert pickle.dumps(loaded) == pickle.dumps(original)
            for key, arr in original.items():
                out = loaded[key]
                assert out.dtype == arr.dtype and out.shape == arr.shape
                assert out.flags.writeable and not isinstance(out, np.memmap)

    def test_nan_bit_patterns_survive_the_trip(self, tmp_path, monkeypatch):
        # distinct NaN payloads are invisible to == but not to tobytes()
        bits = np.array(
            [0x7FF8000000000001, 0x7FF8000000000002, 0xFFF8000000000000] * 4,
            dtype="<u8",
        )
        arr = bits.view(np.float64)
        [loaded] = self._roundtrip([{"nans": arr}], tmp_path, monkeypatch)
        assert loaded["nans"].tobytes() == arr.tobytes()
        assert pickle.dumps(loaded["nans"]) == pickle.dumps(arr)

    def test_awkward_arrays_stay_inline_but_identical(self, tmp_path, monkeypatch):
        base = np.arange(512, dtype=np.float64)
        items = [
            {
                "strided": base[::2],  # not C-contiguous
                "fortran": np.asfortranarray(np.arange(64, dtype=np.float64).reshape(8, 8)),
                "deep": np.zeros((2, 2, 2, 2, 2)),  # 5-D: beyond the meta row
                "objects": np.array([{"a": 1}, [2, 3], None], dtype=object),
                "structured": np.zeros(16, dtype=[("x", "<f8"), ("y", "<i4")]),
                "tiny": np.arange(4, dtype=np.int8),  # below the spill floor
            }
        ]
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        spill = SpillDir.create()
        reader = spill.write_shard(0, items)
        arrmeta = np.load(spill.directory / "shard-00.arrmeta.npy")
        assert len(arrmeta) == 0  # nothing above was eligible to externalise
        [loaded] = SpilledResults(spill, [reader])
        assert pickle.dumps(loaded) == pickle.dumps(items[0])

    def test_intra_result_aliasing_is_preserved(self, tmp_path, monkeypatch):
        # persistent-id saves bypass pickle's memo; without dedup an
        # array referenced twice would rehydrate as two objects and the
        # re-pickled memo structure (and bytes) would change
        shared = np.arange(128, dtype=np.float64)
        item = {"a": shared, "b": shared, "c": shared[:64].copy()}
        [loaded] = self._roundtrip([item], tmp_path, monkeypatch)
        assert loaded["a"] is loaded["b"]
        assert loaded["c"] is not loaded["a"]
        assert pickle.dumps(loaded) == pickle.dumps(item)

    def test_sequence_protocol(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        spill = SpillDir.create()
        readers = [
            spill.write_shard(0, [10, 11, 12]),
            spill.write_shard(1, [13, 14]),
            spill.write_shard(2, [15]),
        ]
        results = SpilledResults(spill, readers)
        assert list(results) == [10, 11, 12, 13, 14, 15]
        assert results[0] == 10 and results[-1] == 15 and results[4] == 14
        assert results[1:4] == [11, 12, 13]
        with pytest.raises(IndexError):
            results[6]


class TestSpillLifecycle:
    def test_success_cleans_up_when_results_die(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        engine = CampaignEngine(SerialExecutor(), shards=3)
        run = engine.run(_square, list(range(9)), label="spill-gc")
        assert isinstance(run.results, SpilledResults)
        spill_dir = run.results.spill_dir
        assert spill_dir.is_dir() and spill_dir.parent == tmp_path
        assert list(run.results) == [i * i for i in range(9)]
        del run
        gc.collect()
        assert not spill_dir.exists()
        assert list(tmp_path.iterdir()) == []

    def test_mid_shard_failure_cleans_up_and_raises(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        engine = CampaignEngine(SerialExecutor(), shards=4)
        with pytest.raises(RuntimeError, match="task 7"):
            engine.run(_boom_on_seven, list(range(12)), label="spill-fail")
        gc.collect()
        assert list(tmp_path.iterdir()) == []  # coordinator deleted its spill

    def test_cleanup_is_idempotent(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        spill = SpillDir.create()
        spill.write_shard(0, [1, 2])
        assert spill.alive
        spill.cleanup()
        assert not spill.alive and not spill.directory.exists()
        spill.cleanup()  # second call must be a no-op


# ---------------------------------------------------------------------------
# the engine's sharded path
# ---------------------------------------------------------------------------
class TestShardedEngine:
    def test_plain_tasks_match_unsharded(self):
        unsharded = CampaignEngine(SerialExecutor()).run(_square, list(range(20)))
        sharded = CampaignEngine(SerialExecutor(), shards=6).run(_square, list(range(20)))
        assert list(sharded.results) == unsharded.results
        assert sharded.metrics.n_tasks == 20
        assert sharded.metrics.shards == {
            "shards": 6,
            "spilled_items": 20,
            "spill_bytes": sharded.metrics.shards["spill_bytes"],
        }
        assert sharded.metrics.shards["spill_bytes"] > 0
        assert "shards: merged 6 shards" in sharded.metrics.report()

    def test_one_shard_stays_on_the_unsharded_path(self):
        run = CampaignEngine(SerialExecutor(), shards=1).run(_square, list(range(5)))
        assert isinstance(run.results, list)
        assert run.metrics.shards is None

    def test_merged_metrics_match_unsharded_funnel(self, small_world):
        serial = DatasetBuilder(small_world).analyze(
            DATASET, engine=CampaignEngine(SerialExecutor())
        )
        sharded = DatasetBuilder(small_world).analyze(
            DATASET, engine=CampaignEngine(SerialExecutor(), shards=4)
        )
        assert sharded.metrics.funnel == serial.metrics.funnel
        assert sharded.metrics.n_tasks == serial.metrics.n_tasks
        for name, totals in serial.metrics.stages.items():
            merged = sharded.metrics.stages[name]
            assert merged.touched == totals.touched, name
            assert merged.skips == totals.skips, name

    def test_analyses_are_a_lazy_mapping_and_byte_identical(self, small_world):
        serial = DatasetBuilder(small_world).analyze(
            DATASET, engine=CampaignEngine(SerialExecutor())
        )
        sharded = DatasetBuilder(small_world).analyze(
            DATASET, engine=CampaignEngine(SerialExecutor(), shards=3)
        )
        analyses = sharded.analyses
        assert isinstance(analyses, SpilledAnalyses)
        assert list(analyses) == list(serial.analyses)
        assert len(analyses) == len(serial.analyses)
        first = next(iter(analyses))
        assert first in analyses and "not-a-block" not in analyses
        with pytest.raises(KeyError):
            analyses["not-a-block"]
        for cidr in analyses:
            assert pickle.dumps(analyses[cidr]) == pickle.dumps(
                serial.analyses[cidr]
            ), f"sharded diverged from serial for {cidr}"

    def test_sharded_peak_allocation_stays_below_unsharded(self, tmp_path, monkeypatch):
        # the tentpole's success metric at smoke scale: holding every
        # result (unsharded) must allocate measurably more than
        # streaming shards through the spill directory
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        tasks = list(range(48))
        started_here = not tracemalloc.is_tracing()
        if started_here:
            tracemalloc.start()
        try:
            gc.collect()
            tracemalloc.reset_peak()
            run = CampaignEngine(SerialExecutor()).run(_alloc_block, tasks)
            assert len(run.results) == 48
            _, unsharded_peak = tracemalloc.get_traced_memory()
            del run
            gc.collect()
            tracemalloc.reset_peak()
            run = CampaignEngine(SerialExecutor(), shards=12).run(_alloc_block, tasks)
            assert len(run.results) == 48
            _, sharded_peak = tracemalloc.get_traced_memory()
            del run
            gc.collect()
        finally:
            if started_here:
                tracemalloc.stop()
        assert sharded_peak < 0.6 * unsharded_peak, (
            f"sharded peak {sharded_peak} not below unsharded {unsharded_peak}"
        )


# ---------------------------------------------------------------------------
# experiment outputs: the acceptance bar
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig3_serial_bytes():
    from repro.experiments import fig3

    return pickle.dumps(fig3.run(n_blocks=64, engine=CampaignEngine(SerialExecutor())))


class TestShardedByteIdentity:
    def test_serial_sharded_matches(self, fig3_serial_bytes):
        from repro.experiments import fig3

        engine = CampaignEngine(SerialExecutor(), shards=3)
        assert pickle.dumps(fig3.run(n_blocks=64, engine=engine)) == fig3_serial_bytes

    def test_parallel_sharded_matches(self, fig3_serial_bytes):
        from repro.experiments import fig3

        engine = CampaignEngine(ParallelExecutor(workers=2), shards=3)
        result = fig3.run(n_blocks=64, engine=engine)
        assert engine.executor.fallback_reason is None
        assert pickle.dumps(result) == fig3_serial_bytes

    def test_shm_sharded_matches(self, fig3_serial_bytes):
        from repro.experiments import fig3
        from repro.runtime import SharedMemoryExecutor

        with CampaignEngine(SharedMemoryExecutor(workers=2), shards=2) as engine:
            result = fig3.run(n_blocks=64, engine=engine)
            assert engine.executor.fallback_reason is None
        assert pickle.dumps(result) == fig3_serial_bytes

    def test_table2_sharded_matches(self):
        from repro.experiments import table2

        serial = pickle.dumps(
            table2.run(n_blocks=48, engine=CampaignEngine(SerialExecutor()))
        )
        sharded = pickle.dumps(
            table2.run(n_blocks=48, engine=CampaignEngine(SerialExecutor(), shards=4))
        )
        assert sharded == serial


# ---------------------------------------------------------------------------
# cache striping
# ---------------------------------------------------------------------------
class TestCacheStriping:
    def test_resharding_stays_warm_across_stripes(self, small_world, tmp_path):
        cold = CampaignEngine(
            SerialExecutor(), cache=AnalysisCache(tmp_path), shards=2
        )
        first = DatasetBuilder(small_world).analyze(DATASET, engine=cold)
        assert first.metrics.cache["misses"] == first.metrics.n_tasks
        assert (tmp_path / "shard-00").is_dir() and (tmp_path / "shard-01").is_dir()

        warm = CampaignEngine(
            SerialExecutor(), cache=AnalysisCache(tmp_path), shards=3
        )
        second = DatasetBuilder(small_world).analyze(DATASET, engine=warm)
        assert second.metrics.cache["hits"] == second.metrics.n_tasks
        assert second.metrics.cache["misses"] == 0
        for cidr in second.analyses:
            assert pickle.dumps(second.analyses[cidr]) == pickle.dumps(
                first.analyses[cidr]
            )

    def test_striped_runs_read_unstriped_entries(self, small_world, tmp_path):
        flat = CampaignEngine(SerialExecutor(), cache=AnalysisCache(tmp_path))
        DatasetBuilder(small_world).analyze(DATASET, engine=flat)
        striped = CampaignEngine(
            SerialExecutor(), cache=AnalysisCache(tmp_path), shards=4
        )
        result = DatasetBuilder(small_world).analyze(DATASET, engine=striped)
        assert result.metrics.cache["hits"] == result.metrics.n_tasks

    def test_memory_only_cache_is_shared_not_striped(self):
        cache = AnalysisCache()
        engine = CampaignEngine(SerialExecutor(), cache=cache, shards=3)
        assert engine._stripe_cache(0) is cache
        assert engine._stripe_cache(2) is cache


# ---------------------------------------------------------------------------
# the progress plane under sharding
# ---------------------------------------------------------------------------
class TestShardedProgress:
    def test_records_carry_shard_and_campaign_fields(self, tmp_path):
        import json

        emitter = ProgressEmitter(tmp_path, interval_s=0.0)
        with use_progress(emitter):
            CampaignEngine(SerialExecutor(), shards=3).run(
                _square, list(range(9)), label="sharded-progress"
            )
        records = [
            json.loads(line)
            for line in (tmp_path / "progress.jsonl").read_text().splitlines()
        ]
        assert records, "no heartbeats emitted"
        for record in records:
            assert record["shards"] == 3
            assert record["campaign_total"] == 9
            assert record["shard"] in (0, 1, 2, None)
        finishes = [r for r in records if r["event"] == "finish"]
        assert [r["shard"] for r in finishes] == [0, 1, 2]  # one per shard, forced
        assert finishes[-1]["campaign_done"] == 9
        done = [r["campaign_done"] for r in records]
        assert done == sorted(done), "global progress must be monotonic"
        ticks = [r for r in records if r["event"] == "tick" and r["shard"] == 1]
        assert ticks and all(r["campaign_done"] > 3 for r in ticks)

    def test_unsharded_records_stay_unchanged(self, tmp_path):
        import json

        emitter = ProgressEmitter(tmp_path, interval_s=0.0)
        with use_progress(emitter):
            CampaignEngine(SerialExecutor()).run(_square, list(range(4)))
        records = [
            json.loads(line)
            for line in (tmp_path / "progress.jsonl").read_text().splitlines()
        ]
        assert records
        for record in records:
            assert "shard" not in record and "campaign_done" not in record
