"""Tests for the `repro export` subcommand (stubbed campaign)."""

from __future__ import annotations

import json
from dataclasses import dataclass

import pytest

from repro.core.aggregate import BlockRecord, GridAggregator
from repro.net.geo import GeoInfo


@dataclass
class _FakeCampaign:
    records: tuple
    first_day: int = 92
    n_days: int = 182

    def aggregator(self, **kwargs):
        agg = GridAggregator(min_responsive=1, min_change_sensitive=1)
        return agg.add_all(list(self.records))


@pytest.fixture()
def stubbed_campaign(monkeypatch):
    geo = GeoInfo(lat=30.5, lon=114.5, country="China", continent="Asia", city="Wuhan")
    records = (
        BlockRecord(geo=geo, responsive=True, change_sensitive=True, downward_days=(100,)),
        BlockRecord(geo=geo, responsive=True, change_sensitive=True, downward_days=(100, 120)),
        BlockRecord(geo=geo, responsive=True, change_sensitive=False),
    )
    campaign = _FakeCampaign(records=records)
    import repro.experiments.common as common

    monkeypatch.setattr(common, "covid_campaign", lambda *a, **k: campaign)
    return campaign


class TestCliExport:
    def test_export_writes_all_artifacts(self, stubbed_campaign, tmp_path, capsys):
        from repro.cli import main

        out_dir = tmp_path / "results"
        assert main(["export", str(out_dir)]) == 0
        assert (out_dir / "gridcell_daily.csv").exists()
        assert (out_dir / "change_sensitive_map.geojson").exists()
        assert (out_dir / "blocks.csv").exists()

        payload = json.loads((out_dir / "change_sensitive_map.geojson").read_text())
        assert payload["features"][0]["properties"]["change_sensitive_blocks"] == 2

        csv_lines = (out_dir / "blocks.csv").read_text().strip().splitlines()
        assert len(csv_lines) == 4  # header + 3 blocks

        message = capsys.readouterr().out
        assert "wrote" in message

    def test_export_creates_directory(self, stubbed_campaign, tmp_path):
        from repro.cli import main

        nested = tmp_path / "a" / "b"
        assert main(["export", str(nested)]) == 0
        assert nested.is_dir()
